#include "resource/store.hpp"

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "resource/shard_engine.hpp"
#include "resource/store_index.hpp"
#include "util/fmt.hpp"

namespace dreamsim::resource {

ResourceStore::ResourceStore(ConfigCatalogue configs)
    : configs_(std::move(configs)),
      idle_lists_(configs_.size()),
      busy_lists_(configs_.size()),
      index_(std::make_unique<StoreIndex>(configs_)) {
  for (const Configuration& c : configs_.all()) {
    if (min_config_area_ == 0 || c.required_area < min_config_area_) {
      min_config_area_ = c.required_area;
    }
  }
}

// Out of line so the header can hold StoreIndex behind a forward
// declaration. Moves re-bind the index's catalogue pointer, which refers
// into the store itself.
ResourceStore::~ResourceStore() = default;

ResourceStore::ResourceStore(ResourceStore&& other) noexcept
    : configs_(std::move(other.configs_)),
      nodes_(std::move(other.nodes_)),
      idle_lists_(std::move(other.idle_lists_)),
      busy_lists_(std::move(other.busy_lists_)),
      blank_(std::move(other.blank_)),
      blank_pos_(std::move(other.blank_pos_)),
      busy_area_(std::move(other.busy_area_)),
      failed_count_(other.failed_count_),
      index_(std::move(other.index_)),
      shard_(std::move(other.shard_)),
      min_config_area_(other.min_config_area_),
      meter_(other.meter_) {
  if (index_) index_->RebindCatalogue(configs_);
  if (shard_) shard_->Bind(configs_, nodes_, blank_, blank_pos_, busy_area_);
}

ResourceStore& ResourceStore::operator=(ResourceStore&& other) noexcept {
  if (this == &other) return *this;
  configs_ = std::move(other.configs_);
  nodes_ = std::move(other.nodes_);
  idle_lists_ = std::move(other.idle_lists_);
  busy_lists_ = std::move(other.busy_lists_);
  blank_ = std::move(other.blank_);
  blank_pos_ = std::move(other.blank_pos_);
  busy_area_ = std::move(other.busy_area_);
  failed_count_ = other.failed_count_;
  index_ = std::move(other.index_);
  shard_ = std::move(other.shard_);
  min_config_area_ = other.min_config_area_;
  meter_ = other.meter_;
  if (index_) index_->RebindCatalogue(configs_);
  if (shard_) shard_->Bind(configs_, nodes_, blank_, blank_pos_, busy_area_);
  return *this;
}

void ResourceStore::SetIndexed(bool enabled) {
  // The sharded engine answers from its shard-local indexes exactly when
  // the store is indexed, so the flavour follows this toggle.
  if (shard_) shard_->SetIndexed(enabled);
  if (enabled == indexed()) return;
  if (!enabled) {
    index_.reset();
    return;
  }
  index_ = std::make_unique<StoreIndex>(configs_);
  for (const Node& n : nodes_) {
    index_->AddNode(n, busy_area_[n.id().value()]);
  }
}

void ResourceStore::SetShards(std::size_t shards, std::size_t threads,
                              ShardBy by) {
  if (shards <= 1) {
    shard_.reset();
    for (EntryList& l : idle_lists_) l.SetPartition(nullptr, 0);
    for (EntryList& l : busy_lists_) l.SetPartition(nullptr, 0);
    return;
  }
  shard_ = std::make_unique<ShardEngine>(configs_, shards, threads, by);
  shard_->Bind(configs_, nodes_, blank_, blank_pos_, busy_area_);
  shard_->SetIndexed(indexed());
  for (const Node& n : nodes_) {
    shard_->AddNode(n, busy_area_[n.id().value()]);
  }
  // Partition every per-config list the same way the node population is
  // partitioned, so BestIdleEntry can scan shard buckets (DESIGN.md §14).
  // The engine's shard map covers every node by now, and its vector object
  // outlives the lists' pointers (reset above clears them first).
  for (EntryList& l : idle_lists_) l.SetPartition(&shard_->shard_map(), shards);
  for (EntryList& l : busy_lists_) l.SetPartition(&shard_->shard_map(), shards);
}

bool ResourceStore::ShardAnswers() const {
  return shard_ && (shard_->indexed() || shard_->parallel());
}

void ResourceStore::PrefetchDecision(Area needed_area, FamilyId family) {
  if (ShardAnswers()) shard_->PrefetchDecision(needed_area, family);
}

void ResourceStore::RefreshIndex(NodeId node_id) {
  if (index_) {
    index_->Refresh(nodes_[node_id.value()], busy_area_[node_id.value()]);
  }
  if (shard_) {
    shard_->Refresh(nodes_[node_id.value()], busy_area_[node_id.value()]);
  }
}

NodeId ResourceStore::AddNode(Area total_area, FamilyId family, Caps caps,
                              Tick network_delay, bool contiguous,
                              Placement placement) {
  const auto id = NodeId{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.emplace_back(id, total_area, family, caps, contiguous, placement);
  nodes_.back().set_network_delay(network_delay);
  if (min_config_area_ > 0) {
    // A node can hold at most total/min-config-area live slots; capped
    // tightly (occupancy rarely passes a handful) so the hint kills the
    // small-vector reallocation churn without bloating per-node memory —
    // at a million nodes a generous cap costs real cache locality.
    nodes_.back().ReserveSlots(std::min<std::size_t>(
        static_cast<std::size_t>(total_area / min_config_area_) + 1, 16));
  }
  blank_pos_.push_back(blank_.size());
  blank_.push_back(id);
  busy_area_.push_back(0);
  if (index_) index_->AddNode(nodes_.back(), 0);
  if (shard_) shard_->AddNode(nodes_.back(), 0);
  return id;
}

void ResourceStore::InitNodes(const NodeGenParams& params, Rng& rng) {
  if (params.min_area <= 0 || params.min_area > params.max_area) {
    throw std::invalid_argument("invalid node area range");
  }
  for (int i = 0; i < params.count; ++i) {
    const Area area = rng.uniform_int(params.min_area, params.max_area);
    const auto family =
        FamilyId{static_cast<std::uint32_t>(i % std::max(1, params.family_count))};
    Caps caps;
    // Capabilities scale with fabric size: bigger devices carry more BRAM
    // and DSP slices; the configuration port is family-typical.
    caps.embedded_memory_kb = area / 2;
    caps.dsp_slices = area / 25;
    caps.config_bandwidth = 400;
    const Tick delay =
        rng.uniform_int(params.min_network_delay, params.max_network_delay);
    AddNode(area, family, caps, delay, params.contiguous_placement,
            params.placement);
  }
  ReserveEntryLists(params.count);
}

void ResourceStore::InitDeviceClasses(
    std::span<const DeviceClassParams> classes, std::uint64_t seed_base) {
  if (classes.empty()) {
    throw std::invalid_argument("need at least one device class");
  }
  int total = 0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const DeviceClassParams& p = classes[c];
    if (p.count <= 0) {
      throw std::invalid_argument(
          "device class '" + p.name + "' has non-positive count");
    }
    if (p.min_area <= 0 || p.min_area > p.max_area) {
      throw std::invalid_argument(
          "device class '" + p.name + "' has an invalid area range");
    }
    total += p.count;
    // Class 0 replays the homogeneous InitNodes stream verbatim; later
    // classes branch onto decoupled sub-streams so editing one class never
    // perturbs another's population.
    Rng rng(c == 0 ? seed_base
                   : DeriveSeed(seed_base, 0xDEC1A550u + std::uint64_t{c}));
    const auto family = FamilyId{static_cast<std::uint32_t>(c)};
    for (int i = 0; i < p.count; ++i) {
      const Area area = rng.uniform_int(p.min_area, p.max_area);
      Caps caps;
      caps.embedded_memory_kb = area / 2;
      caps.dsp_slices = area / 25;
      caps.config_bandwidth = p.config_bandwidth;
      const Tick delay =
          rng.uniform_int(p.min_network_delay, p.max_network_delay);
      AddNode(area, family, caps, delay, p.contiguous_placement, p.placement);
    }
  }
  ReserveEntryLists(total);
}

void ResourceStore::ReserveEntryLists(int node_count) {
  // Reservation discipline (DESIGN.md §13): size each per-config list for
  // the population it will plausibly hold. Entries spread across the
  // catalogue, so a couple of list slots per node per config amortizes the
  // growth reallocations without over-committing memory at large N
  // (micro_simulator's mutation benches measure the effect).
  const std::size_t per_list = std::min<std::size_t>(
      static_cast<std::size_t>(node_count),
      static_cast<std::size_t>(node_count) * 2 /
              std::max<std::size_t>(configs_.size(), 1) +
          16);
  for (EntryList& l : idle_lists_) l.Reserve(per_list);
  for (EntryList& l : busy_lists_) l.Reserve(per_list);
}

Node& ResourceStore::node(NodeId id) {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("unknown NodeId");
  }
  return nodes_[id.value()];
}

const Node& ResourceStore::node(NodeId id) const {
  return const_cast<ResourceStore*>(this)->node(id);
}

const EntryList& ResourceStore::idle_list(ConfigId config) const {
  if (!configs_.Contains(config)) throw std::out_of_range("unknown ConfigId");
  return idle_lists_[config.value()];
}

const EntryList& ResourceStore::busy_list(ConfigId config) const {
  if (!configs_.Contains(config)) throw std::out_of_range("unknown ConfigId");
  return busy_lists_[config.value()];
}

EntryList& ResourceStore::idle_list_mut(ConfigId config) {
  if (!configs_.Contains(config)) throw std::out_of_range("unknown ConfigId");
  return idle_lists_[config.value()];
}

EntryList& ResourceStore::busy_list_mut(ConfigId config) {
  if (!configs_.Contains(config)) throw std::out_of_range("unknown ConfigId");
  return busy_lists_[config.value()];
}

std::optional<EntryRef> ResourceStore::FindBestIdleEntry(ConfigId config) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  // Not a scan fallback even in scan mode: this query has no index fast
  // path in either kernel (the idle list is the primary structure).
  obs::MetricInc(obs::MetricId::kStoreQueryIdleEntry);
  if (ShardAnswers()) {
    // Per-shard bucket scan; the charge is what FindMin pays per cell.
    const EntryList& list = idle_list(config);
    meter_.Add(StepKind::kSchedulingSearch, list.size());
    return shard_->BestIdleEntry(list);
  }
  return idle_list(config).FindMin(
      [this](EntryRef e) {
        return static_cast<long long>(node(e.node).available_area());
      },
      [](EntryRef) { return true; }, meter_, StepKind::kSchedulingSearch);
}

namespace {

/// Family compatibility: a valid required family must match the node's.
bool FamilyOk(FamilyId required, const Node& n) {
  return !required.valid() || required == n.family();
}

}  // namespace

std::optional<NodeId> ResourceStore::FindBestBlankNode(Area needed_area,
                                                       FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryBlank);
    // Scan semantics (no StoreIndex) — K/thread-invariant: whether a shard
    // broadcast executes the scan does not change the count.
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    // The reference scan visits every blank node, fit or not.
    meter_.Add(StepKind::kSchedulingSearch, blank_.size());
    return shard_->BestBlank(needed_area, family);
  }
  if (index_) {
    // The reference scan visits every blank node, fit or not.
    meter_.Add(StepKind::kSchedulingSearch, blank_.size());
    return index_->BestBlank(needed_area, family, blank_pos_);
  }
  std::optional<NodeId> best;
  Area best_area = 0;
  for (const NodeId id : blank_) {
    meter_.Add(StepKind::kSchedulingSearch);
    const Node& n = node(id);
    if (!FamilyOk(family, n)) continue;
    if (n.total_area() < needed_area) continue;
    if (!best || n.total_area() < best_area) {
      best = id;
      best_area = n.total_area();
    }
  }
  return best;
}

std::optional<NodeId> ResourceStore::FindBestPartiallyBlankNode(
    Area needed_area, FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryPartialBlank);
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    // The reference scan walks the whole node list unconditionally.
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return shard_->BestPartiallyBlank(needed_area, family);
  }
  if (index_) {
    // The reference scan walks the whole node list unconditionally.
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return index_->BestPartiallyBlank(needed_area, family, nodes_);
  }
  std::optional<NodeId> best;
  Area best_area = 0;
  for (const Node& n : nodes_) {
    meter_.Add(StepKind::kSchedulingSearch);
    if (!FamilyOk(family, n)) continue;
    if (n.blank()) continue;
    if (!n.CanHost(needed_area)) continue;
    if (!best || n.available_area() < best_area) {
      best = n.id();
      best_area = n.available_area();
    }
  }
  return best;
}

std::optional<ReconfigPlan> ResourceStore::FindAnyIdleNode(Area needed_area,
                                                           FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryReclaim);
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    // The charge is the analytic count of node and slot visits the scan
    // would have made: one per node up to the winner (or all of them on a
    // miss) plus one per live slot of every family-compatible node the
    // scan fully inspected — including the winner's own slots when the
    // plan reclaims (the reference pays the slot walk that built it).
    auto plan = shard_->FindAnyIdle(needed_area, family);
    Steps steps = 0;
    if (plan) {
      const std::uint32_t winner = plan->node.value();
      steps = static_cast<Steps>(winner) + 1 +
              shard_->LiveSlotPrefixBefore(family, winner);
      if (!plan->removable_entries.empty()) {
        steps += static_cast<Steps>(node(plan->node).config_count());
      }
    } else {
      steps = static_cast<Steps>(nodes_.size()) +
              shard_->LiveSlotTotal(family);
    }
    meter_.Add(StepKind::kSchedulingSearch, steps);
    return plan;
  }
  if (index_) {
    // Candidates come from the max-reclaimable-area descent; the charge is
    // the analytic count of node and slot visits the scan would have made.
    auto result = index_->FindAnyIdle(needed_area, family, nodes_);
    meter_.Add(StepKind::kSchedulingSearch, result.steps);
    return std::move(result.plan);
  }
  // Algorithm 1: walk the node list; on each node accumulate AvailableArea
  // plus the areas of idle entries (in slot order) until the target fits.
  for (const Node& n : nodes_) {
    Area accumulated = n.available_area();
    meter_.Add(StepKind::kSchedulingSearch);
    if (!FamilyOk(family, n)) continue;
    if (n.CanHost(needed_area)) {
      // Spare fabric alone suffices; nothing needs reclaiming.
      return ReconfigPlan{n.id(), {}};
    }
    std::vector<SlotIndex> removable;
    std::optional<ReconfigPlan> plan;
    n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
      meter_.Add(StepKind::kSchedulingSearch);
      if (plan || !pair.idle()) return;
      accumulated += configs_.Get(pair.config).required_area;
      removable.push_back(slot);
      if (accumulated < needed_area) return;
      // Under contiguous placement the scalar sum is necessary but not
      // sufficient: the freed extents must also form a big-enough hole.
      if (n.contiguous() && !n.CanHostAfterReclaiming(removable, needed_area)) {
        return;
      }
      plan = ReconfigPlan{n.id(), removable};
    });
    if (plan) return plan;
  }
  return std::nullopt;
}

bool ResourceStore::AnyBusyNodeCouldFit(Area needed_area, FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryBusyFit);
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    // The reference scan early-exits at the first qualifying node, having
    // charged one step per node up to it (all nodes on a miss).
    const auto winner = shard_->AnyBusyFitNode(needed_area, family);
    meter_.Add(StepKind::kSchedulingSearch,
               winner ? static_cast<Steps>(winner->value()) + 1
                      : static_cast<Steps>(nodes_.size()));
    return winner.has_value();
  }
  if (index_) {
    const auto result = index_->AnyBusyFit(needed_area, family);
    meter_.Add(StepKind::kSchedulingSearch, result.steps);
    return result.found;
  }
  for (const Node& n : nodes_) {
    meter_.Add(StepKind::kSchedulingSearch);
    if (!FamilyOk(family, n)) continue;
    if (n.busy() && n.total_area() >= needed_area) return true;
  }
  return false;
}

std::optional<NodeId> ResourceStore::FindBestIdleConfiguredNode(
    Area needed_area, FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryIdleConfigured);
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return shard_->BestIdleConfigured(needed_area, family);
  }
  if (index_) {
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return index_->BestIdleConfigured(needed_area, family);
  }
  std::optional<NodeId> best;
  Area best_area = 0;
  for (const Node& n : nodes_) {
    meter_.Add(StepKind::kSchedulingSearch);
    if (!FamilyOk(family, n)) continue;
    if (n.blank() || n.busy()) continue;
    if (n.total_area() < needed_area) continue;
    if (!best || n.total_area() < best_area) {
      best = n.id();
      best_area = n.total_area();
    }
  }
  return best;
}

std::optional<NodeId> ResourceStore::FindRankedHostNode(Area needed_area,
                                                        HostRank rank,
                                                        FamilyId family) {
  const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kStoreQueryRanked);
    if (!index_) reg.Add(obs::MetricId::kStoreScanFallback);
  }
  if (ShardAnswers()) {
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return shard_->RankedHost(needed_area, rank, family);
  }
  if (index_) {
    meter_.Add(StepKind::kSchedulingSearch, nodes_.size());
    return index_->RankedHost(needed_area, rank, family, nodes_);
  }
  std::optional<NodeId> best;
  Area best_avail = 0;
  for (const Node& n : nodes_) {
    meter_.Add(StepKind::kSchedulingSearch);
    if (!FamilyOk(family, n)) continue;
    if (!n.CanHost(needed_area)) continue;
    // First fit keeps the first eligible node but still walks the rest
    // (the scan has no early exit — every node costs a step).
    const bool better =
        !best || (rank == HostRank::kBestFit && n.available_area() < best_avail) ||
        (rank == HostRank::kWorstFit && n.available_area() > best_avail);
    if (better) {
      best = n.id();
      best_avail = n.available_area();
    }
  }
  return best;
}

Area ResourceStore::ReclaimablePotential(NodeId id) const {
  return node(id).total_area() - busy_area_[id.value()];
}

bool ResourceStore::CouldEventuallyHost(NodeId id, Area needed_area) const {
  const Node& n = node(id);
  if (n.CanHost(needed_area)) return true;
  // The reference accumulation only ever sums idle-entry areas, so a node
  // with no idle entry cannot improve on CanHost (this matters on a
  // fragmented contiguous fabric, where available area alone never counts).
  if (n.idle_entry_count() == 0) return false;
  return ReclaimablePotential(id) >= needed_area;
}

Area ResourceStore::CouldEventuallyHostBound(NodeId id) const {
  const Node& n = node(id);
  // A failed node hosts nothing now or after any amount of reclaiming
  // (configuration areas are positive, so a 0 bound admits no task).
  if (n.failed()) return 0;
  // CanHost(a) holds iff a <= the hostable-now bound: the largest free
  // extent under contiguous placement, the available area otherwise.
  const Area now =
      n.contiguous() ? n.layout().largest_free_extent() : n.available_area();
  if (n.idle_entry_count() == 0) return now;
  return std::max(now, ReclaimablePotential(id));
}

void ResourceStore::RemoveFromBlank(NodeId node_id) {
  const std::size_t pos = blank_pos_[node_id.value()];
  if (pos == kNotBlank) throw std::logic_error("node missing from blank list");
  // Counted cost of the reference scan that found the node at `pos`.
  meter_.Add(StepKind::kHousekeeping, pos + 1);
  const NodeId moved = blank_.back();
  blank_[pos] = moved;
  blank_.pop_back();
  blank_pos_[moved.value()] = pos;
  blank_pos_[node_id.value()] = kNotBlank;
}

void ResourceStore::PushBlank(NodeId node_id) {
  meter_.Add(StepKind::kHousekeeping);
  blank_pos_[node_id.value()] = blank_.size();
  blank_.push_back(node_id);
}

EntryRef ResourceStore::Configure(NodeId node_id, ConfigId config) {
  const Configuration& c = configs_.Get(config);
  Node& n = node(node_id);
  if (n.failed()) throw std::logic_error("Configure: node is failed");
  if (!c.CompatibleWith(n.family())) {
    throw std::logic_error(
        "Configure: bitstream family incompatible with the node");
  }
  const bool was_blank = n.blank();
  const SlotIndex slot = n.SendBitstream(c);
  if (was_blank) RemoveFromBlank(node_id);
  const EntryRef entry{node_id, slot};
  idle_list_mut(config).Add(entry, meter_);
  RefreshIndex(node_id);
  return entry;
}

void ResourceStore::ReclaimSlot(EntryRef entry) {
  Node& n = node(entry.node);
  const ConfigTaskPair& pair = n.Slot(entry.slot);
  if (!pair.idle()) throw std::logic_error("ReclaimSlot: entry is busy");
  if (!idle_list_mut(pair.config).Remove(entry, meter_)) {
    throw std::logic_error("ReclaimSlot: entry missing from idle list");
  }
  const Area area = configs_.Get(pair.config).required_area;
  n.MakeNodePartiallyBlank(entry.slot, area);
  if (n.blank()) PushBlank(entry.node);
  RefreshIndex(entry.node);
}

void ResourceStore::BlankNode(NodeId node_id) {
  Node& n = node(node_id);
  if (n.busy()) throw std::logic_error("BlankNode: node has running tasks");
  if (n.blank()) return;
  n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
    if (!idle_list_mut(pair.config).Remove(EntryRef{node_id, slot}, meter_)) {
      throw std::logic_error("BlankNode: entry missing from idle list");
    }
  });
  n.MakeNodeBlank();
  PushBlank(node_id);
  RefreshIndex(node_id);
}

void ResourceStore::AssignTask(EntryRef entry, TaskId task) {
  Node& n = node(entry.node);
  const ConfigId config = n.Slot(entry.slot).config;
  if (!idle_list_mut(config).Remove(entry, meter_)) {
    throw std::logic_error("AssignTask: entry missing from idle list");
  }
  n.AddTaskToNode(entry.slot, task);
  busy_list_mut(config).Add(entry, meter_);
  busy_area_[entry.node.value()] += configs_.Get(config).required_area;
  RefreshIndex(entry.node);
}

TaskId ResourceStore::ReleaseTask(EntryRef entry) {
  Node& n = node(entry.node);
  const ConfigTaskPair& pair = n.Slot(entry.slot);
  const ConfigId config = pair.config;
  const TaskId task = pair.task;
  if (!busy_list_mut(config).Remove(entry, meter_)) {
    throw std::logic_error("ReleaseTask: entry missing from busy list");
  }
  n.RemoveTaskFromNode(entry.slot);
  idle_list_mut(config).Add(entry, meter_);
  busy_area_[entry.node.value()] -= configs_.Get(config).required_area;
  RefreshIndex(entry.node);
  return task;
}

std::vector<TaskId> ResourceStore::FailNode(NodeId node_id) {
  Node& n = node(node_id);
  if (n.failed()) throw std::logic_error("FailNode: node already failed");
  const bool was_blank = n.blank();
  std::vector<TaskId> killed;
  n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
    const EntryRef entry{node_id, slot};
    const ConfigId config = pair.config;
    const TaskId task = pair.task;
    if (pair.idle()) {
      if (!idle_list_mut(config).Remove(entry, meter_)) {
        throw std::logic_error("FailNode: entry missing from idle list");
      }
      return;
    }
    if (!busy_list_mut(config).Remove(entry, meter_)) {
      throw std::logic_error("FailNode: entry missing from busy list");
    }
    busy_area_[node_id.value()] -= configs_.Get(config).required_area;
    killed.push_back(task);
    n.RemoveTaskFromNode(slot);
  });
  n.MakeNodeBlank();
  // Failed nodes are not candidates for anything, so they live outside the
  // blank list until RepairNode() re-inserts them.
  if (was_blank) RemoveFromBlank(node_id);
  n.MarkFailed();
  ++failed_count_;
  RefreshIndex(node_id);
  return killed;
}

void ResourceStore::RepairNode(NodeId node_id) {
  Node& n = node(node_id);
  if (!n.failed()) throw std::logic_error("RepairNode: node is not failed");
  n.MarkRepaired();
  --failed_count_;
  PushBlank(node_id);
  RefreshIndex(node_id);
}

Area ResourceStore::TotalWastedArea() const {
  Area total = 0;
  for (const Node& n : nodes_) {
    if (!n.blank()) total += n.available_area();
  }
  return total;
}

Area ResourceStore::TotalIdleWastedArea() const {
  Area total = 0;
  for (const Node& n : nodes_) {
    if (!n.blank() && !n.busy()) total += n.available_area();
  }
  return total;
}

std::uint64_t ResourceStore::TotalReconfigurations() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) total += n.reconfig_count();
  return total;
}

ResourceStore::FragmentationStats ResourceStore::Fragmentation() const {
  FragmentationStats stats;
  if (nodes_.empty()) return stats;
  double sum = 0.0;
  for (const Node& n : nodes_) {
    const double f = n.Fragmentation();
    sum += f;
    stats.max = std::max(stats.max, f);
  }
  stats.mean = sum / static_cast<double>(nodes_.size());
  return stats;
}

std::size_t ResourceStore::UsedNodeCount() const {
  std::size_t used = 0;
  for (const Node& n : nodes_) {
    if (n.reconfig_count() > 0) ++used;
  }
  return used;
}

std::vector<std::string> ResourceStore::ValidateConsistency() const {
  std::vector<std::string> violations;
  WorkloadMeter scratch;  // membership checks below must not skew metrics

  // Per-node area accounting (Eq. 4) and list membership per slot.
  for (const Node& n : nodes_) {
    Area occupied = 0;
    n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
      occupied += configs_.Get(pair.config).required_area;
      const EntryRef entry{n.id(), slot};
      const bool in_idle =
          idle_list(pair.config).Contains(entry, scratch,
                                          StepKind::kHousekeeping);
      const bool in_busy =
          busy_list(pair.config).Contains(entry, scratch,
                                          StepKind::kHousekeeping);
      if (pair.idle() && (!in_idle || in_busy)) {
        violations.push_back(Format(
            "node {} slot {}: idle entry not exactly in idle list",
            n.id().value(), slot));
      }
      if (!pair.idle() && (in_idle || !in_busy)) {
        violations.push_back(Format(
            "node {} slot {}: busy entry not exactly in busy list",
            n.id().value(), slot));
      }
    });
    if (n.available_area() != n.total_area() - occupied) {
      violations.push_back(Format(
          "node {}: Eq.4 violated (total={}, occupied={}, available={})",
          n.id().value(), n.total_area(), occupied, n.available_area()));
    }
    if (n.contiguous()) {
      // The fabric layout must agree with the scalar accounting, its free
      // list must be structurally sound, and each live slot's extent must
      // match its configuration's area.
      for (const std::string& v : n.layout().Validate()) {
        violations.push_back(
            Format("node {} layout: {}", n.id().value(), v));
      }
      if (n.layout().free_area() != n.available_area()) {
        violations.push_back(Format(
            "node {}: layout free area {} != available area {}",
            n.id().value(), n.layout().free_area(), n.available_area()));
      }
      n.ForEachSlot([&](SlotIndex slot, const ConfigTaskPair& pair) {
        if (n.SlotExtent(slot).size !=
            configs_.Get(pair.config).required_area) {
          violations.push_back(Format(
              "node {} slot {}: extent size != configuration area",
              n.id().value(), slot));
        }
      });
    }
    if (n.available_area() < 0) {
      violations.push_back(
          Format("node {}: negative available area", n.id().value()));
    }
    const bool in_blank = [&] {
      for (const NodeId id : blank_) {
        if (id == n.id()) return true;
      }
      return false;
    }();
    // Failed nodes are blank but deliberately absent from the blank list.
    if ((n.blank() && !n.failed()) != in_blank) {
      violations.push_back(Format(
          "node {}: blank()={} failed()={} but blank-list membership={}",
          n.id().value(), n.blank(), n.failed(), in_blank));
    }
    if (n.failed() && !n.blank()) {
      violations.push_back(Format(
          "node {}: failed but still holds configurations", n.id().value()));
    }
  }

  // Every list cell must reference a live slot in the matching state.
  for (std::size_t cid = 0; cid < idle_lists_.size(); ++cid) {
    // lint: allow(entry-cells-iteration) — ground-truth sweep
    for (const EntryRef& e : idle_lists_[cid].cells()) {
      const Node& n = node(e.node);
      if (!n.SlotLive(e.slot) || !n.Slot(e.slot).idle() ||
          n.Slot(e.slot).config.value() != cid) {
        violations.push_back(Format(
            "idle list {}: stale cell (node {}, slot {})", cid,
            e.node.value(), e.slot));
      }
    }
    // lint: allow(entry-cells-iteration) — ground-truth sweep
    for (const EntryRef& e : busy_lists_[cid].cells()) {
      const Node& n = node(e.node);
      if (!n.SlotLive(e.slot) || n.Slot(e.slot).idle() ||
          n.Slot(e.slot).config.value() != cid) {
        violations.push_back(Format(
            "busy list {}: stale cell (node {}, slot {})", cid,
            e.node.value(), e.slot));
      }
    }
    if (!idle_lists_[cid].PositionsConsistent()) {
      violations.push_back(Format("idle list {}: position map stale", cid));
    }
    if (!busy_lists_[cid].PositionsConsistent()) {
      violations.push_back(Format("busy list {}: position map stale", cid));
    }
    if (!idle_lists_[cid].PartitionConsistent()) {
      violations.push_back(Format("idle list {}: shard partition stale", cid));
    }
    if (!busy_lists_[cid].PartitionConsistent()) {
      violations.push_back(Format("busy list {}: shard partition stale", cid));
    }
  }

  // The incremental busy-area tally must match a fresh recount.
  for (const Node& n : nodes_) {
    Area busy = 0;
    n.ForEachSlot([&](SlotIndex, const ConfigTaskPair& pair) {
      if (!pair.idle()) busy += configs_.Get(pair.config).required_area;
    });
    if (busy != busy_area_[n.id().value()]) {
      violations.push_back(Format(
          "node {}: busy-area tally {} != recount {}", n.id().value(),
          busy_area_[n.id().value()], busy));
    }
  }

  // Blank position map: exact inverse of the blank list.
  for (std::size_t i = 0; i < blank_.size(); ++i) {
    if (blank_pos_[blank_[i].value()] != i) {
      violations.push_back(Format(
          "blank list slot {}: position map disagrees (node {})", i,
          blank_[i].value()));
    }
  }
  for (const Node& n : nodes_) {
    if ((!n.blank() || n.failed()) && blank_pos_[n.id().value()] != kNotBlank) {
      violations.push_back(Format(
          "node {}: not blank-listed but has a blank-list position",
          n.id().value()));
    }
  }

  // The failed-node tally must match a fresh recount.
  std::size_t failed = 0;
  for (const Node& n : nodes_) {
    if (n.failed()) ++failed;
  }
  if (failed != failed_count_) {
    violations.push_back(Format("failed-node tally {} != recount {}",
                                failed_count_, failed));
  }

  // Cross-check every indexed structure against ground truth.
  if (index_) {
    for (std::string& v : index_->Validate(nodes_, busy_area_)) {
      violations.push_back(std::move(v));
    }
  }
  // Shard partition exactness and every shard-local index.
  if (shard_) {
    for (std::string& v : shard_->Validate()) {
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

}  // namespace dreamsim::resource
