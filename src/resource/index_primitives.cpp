#include "resource/index_primitives.hpp"

#include <algorithm>

namespace dreamsim::resource {

namespace {

constexpr std::size_t LowBit(std::size_t i) { return i & (~i + 1); }

}  // namespace

// --- PrefixSumTree ---

void PrefixSumTree::Append(std::int64_t value) {
  values_.push_back(0);
  tree_.push_back(0);
  // Fenwick cell i (1-based) covers (i - lowbit(i), i]; seed the fresh
  // trailing cell with the sum of the range it covers (the new value is
  // still 0), then point-update to the real value.
  const std::size_t i = values_.size();
  std::int64_t covered = 0;
  for (std::size_t j = i - 1; j > i - LowBit(i); j -= LowBit(j)) {
    covered += tree_[j - 1];
  }
  tree_[i - 1] = covered;
  Assign(i - 1, value);
}

void PrefixSumTree::Assign(std::size_t pos, std::int64_t value) {
  const std::int64_t delta = value - values_[pos];
  if (delta == 0) return;
  values_[pos] = value;
  for (std::size_t j = pos + 1; j <= tree_.size(); j += LowBit(j)) {
    tree_[j - 1] += delta;
  }
}

std::int64_t PrefixSumTree::Prefix(std::size_t count) const {
  std::int64_t sum = 0;
  for (std::size_t j = count; j > 0; j -= LowBit(j)) sum += tree_[j - 1];
  return sum;
}

// --- MaxSegTree ---

void MaxSegTree::Grow() {
  const std::size_t new_cap = cap_ == 0 ? 1 : cap_ * 2;
  std::vector<std::int64_t> fresh(2 * new_cap, kNegInf);
  for (std::size_t i = 0; i < size_; ++i) fresh[new_cap + i] = tree_[cap_ + i];
  for (std::size_t i = new_cap - 1; i > 0; --i) {
    fresh[i] = std::max(fresh[2 * i], fresh[2 * i + 1]);
  }
  cap_ = new_cap;
  tree_ = std::move(fresh);
}

void MaxSegTree::Append(std::int64_t value) {
  if (size_ == cap_) Grow();
  ++size_;
  Assign(size_ - 1, value);
}

void MaxSegTree::Assign(std::size_t pos, std::int64_t value) {
  std::size_t i = cap_ + pos;
  tree_[i] = value;
  for (i /= 2; i >= 1; i /= 2) {
    tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
  }
}

std::int64_t MaxSegTree::Value(std::size_t pos) const {
  return tree_[cap_ + pos];
}

std::size_t MaxSegTree::FirstAtLeast(std::size_t from,
                                     std::int64_t threshold) const {
  if (from >= size_) return npos;
  return Descend(1, 0, cap_, from, threshold);
}

std::size_t MaxSegTree::Descend(std::size_t cell, std::size_t lo,
                                std::size_t hi, std::size_t from,
                                std::int64_t threshold) const {
  // Padding leaves past size_ hold kNegInf, so they can never match.
  if (hi <= from || tree_[cell] < threshold) return npos;
  if (hi - lo == 1) return lo;
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::size_t left = Descend(2 * cell, lo, mid, from, threshold);
  if (left != npos) return left;
  return Descend(2 * cell + 1, mid, hi, from, threshold);
}

}  // namespace dreamsim::resource
