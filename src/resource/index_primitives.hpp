// Append-only tree primitives shared by the indexed fast paths
// (StoreIndex, SusQueueIndex). Positions are dense [0, size); both
// structures only ever grow — removal is modeled by assigning a neutral
// value (0 for sums, kNegInf for maxima).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dreamsim::resource {

/// Append-only Fenwick tree over signed values with point updates and
/// prefix sums. Positions are dense [0, size).
class PrefixSumTree {
 public:
  void Append(std::int64_t value);
  /// Sets position `pos` to `value`.
  void Assign(std::size_t pos, std::int64_t value);
  /// Sum of the first `count` values.
  [[nodiscard]] std::int64_t Prefix(std::size_t count) const;
  [[nodiscard]] std::int64_t Total() const { return Prefix(values_.size()); }
  [[nodiscard]] std::int64_t Value(std::size_t pos) const {
    return values_[pos];
  }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::int64_t> values_;  // current point values
  std::vector<std::int64_t> tree_;    // 1-based Fenwick array
};

/// Append-only max segment tree with a "first position >= threshold"
/// descent — the ordered-scan primitive behind the O(log N) queries.
class MaxSegTree {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::int64_t kNegInf =
      std::numeric_limits<std::int64_t>::min();

  void Append(std::int64_t value);
  void Assign(std::size_t pos, std::int64_t value);
  [[nodiscard]] std::int64_t Value(std::size_t pos) const;
  /// Smallest position >= `from` whose value >= `threshold` (npos when
  /// none). `threshold` must exceed kNegInf.
  [[nodiscard]] std::size_t FirstAtLeast(std::size_t from,
                                         std::int64_t threshold) const;
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  [[nodiscard]] std::size_t Descend(std::size_t cell, std::size_t lo,
                                    std::size_t hi, std::size_t from,
                                    std::int64_t threshold) const;
  void Grow();

  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  std::vector<std::int64_t> tree_;  // 1-based heap layout, 2*cap_ cells
};

}  // namespace dreamsim::resource
