#include "resource/suspension_queue.hpp"

#include <algorithm>

namespace dreamsim::resource {

bool SuspensionQueue::Add(TaskId task, const SusEntryAttrs& attrs,
                          WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  if (capacity_ != 0 && queue_.size() >= capacity_) {
    obs::MetricInc(obs::MetricId::kSusOverflow);
    return false;
  }
  queue_.push_back(task);
  attrs_[task.value()] = attrs;
  if (index_) index_->Add(task, attrs);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kSusEnqueued);
    reg.GaugeSet(obs::MetricId::kSusDepth, queue_.size());
    reg.GaugeMax(obs::MetricId::kSusDepthPeak, queue_.size());
  }
  return true;
}

bool SuspensionQueue::Contains(TaskId task, WorkloadMeter& meter) const {
  if (!index_) obs::MetricInc(obs::MetricId::kSusqScanFallback);
  if (index_) {
    if (index_->Contains(task)) {
      // The scan stops at the hit: position + 1 visited entries.
      meter.Add(StepKind::kHousekeeping, index_->PositionOf(task) + 1);
      return true;
    }
    meter.Add(StepKind::kHousekeeping, queue_.size());
    return false;
  }
  for (const TaskId t : queue_) {
    meter.Add(StepKind::kHousekeeping);
    if (t == task) return true;
  }
  return false;
}

void SuspensionQueue::RemoveAt(std::size_t index, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  EraseAt(index);
}

bool SuspensionQueue::Remove(TaskId task, WorkloadMeter& meter) {
  if (!index_) obs::MetricInc(obs::MetricId::kSusqScanFallback);
  if (index_) {
    if (!index_->Contains(task)) {
      meter.Add(StepKind::kHousekeeping, queue_.size());
      return false;
    }
    const std::size_t pos = index_->PositionOf(task);
    meter.Add(StepKind::kHousekeeping, pos + 1);
    EraseAt(pos);
    return true;
  }
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    meter.Add(StepKind::kHousekeeping);
    if (queue_[i] == task) {
      EraseAt(i);
      return true;
    }
  }
  return false;
}

void SuspensionQueue::RefreshAttrs(TaskId task, const SusEntryAttrs& attrs) {
  attrs_[task.value()] = attrs;
  if (index_) index_->Refresh(task, attrs);
}

void SuspensionQueue::SetDrainIndexed(bool enabled) {
  if (!enabled) {
    index_.reset();
    return;
  }
  index_ = std::make_unique<SusQueueIndex>();
  for (const TaskId task : queue_) {
    index_->Add(task, attrs_.at(task.value()));
  }
}

std::vector<std::string> SuspensionQueue::ValidateIndex() const {
  if (!index_) return {};
  return index_->Validate(
      queue_, [this](TaskId task) { return attrs_.at(task.value()); });
}

void SuspensionQueue::EraseAt(std::size_t index) {
  const TaskId task = queue_[index];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  attrs_.erase(task.value());
  if (index_) index_->Remove(task);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kSusRemoved);
    reg.GaugeSet(obs::MetricId::kSusDepth, queue_.size());
  }
}

}  // namespace dreamsim::resource
