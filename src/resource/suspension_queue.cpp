#include "resource/suspension_queue.hpp"

namespace dreamsim::resource {

bool SuspensionQueue::Add(TaskId task, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  if (capacity_ != 0 && queue_.size() >= capacity_) return false;
  queue_.push_back(task);
  return true;
}

bool SuspensionQueue::Contains(TaskId task, WorkloadMeter& meter) const {
  for (const TaskId t : queue_) {
    meter.Add(StepKind::kHousekeeping);
    if (t == task) return true;
  }
  return false;
}

void SuspensionQueue::RemoveAt(std::size_t index, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
}

bool SuspensionQueue::Remove(TaskId task, WorkloadMeter& meter) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    meter.Add(StepKind::kHousekeeping);
    if (queue_[i] == task) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace dreamsim::resource
