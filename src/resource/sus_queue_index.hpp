// Indexed fast path for the suspension-queue drain queries.
//
// Every task completion drains the SusList: the reference implementation
// walks the whole queue (all three policy variants — full-mode exact
// match/fallback, partial priority, partial FIFO) and charges one modeled
// step per visited entry, so a saturated run pays O(completions x queue)
// host work. This index answers each candidate-selection query in
// O(log Q) host work from incrementally maintained structures, while the
// caller charges the WorkloadMeter exactly what the literal scan would
// have charged (the modeled-effort contract; DESIGN.md "Scheduler
// index"). Decisions are bit-identical with the scans —
// tests/test_sus_drain_diff.cpp proves it differentially.
//
// Layout. Each queued task gets a monotonically increasing sequence
// number at Add time; because the queue is strictly FIFO (a task is
// enqueued at the back and only ever removed, never reordered), queue
// position order == seq order, and an entry's current position is the
// count of live seqs below its own (Fenwick prefix sum). On top of that:
//   - buckets keyed by resolved_config: ordered seq set (oldest match)
//     and (-priority, seq) set (best-priority match, FIFO tie-break) for
//     the full-mode exact-match pick and the partial-mode "rule 1"
//     candidates;
//   - per-family-group structures for the area-bounded fallback
//     ("rule 3": needed_area <= bound). A group holds the tasks whose
//     resolved config pins them to one device family, plus a wildcard
//     group for tasks that are compatible with every family (unresolved
//     config or family-less config):
//       - a MaxSegTree over seq positions storing -needed_area, so
//         "earliest entry at/after a cursor with needed_area <= bound" is
//         one FirstAtLeast(cursor, -bound) descent;
//       - an AreaTreap ordered by (-priority, seq) with subtree-min
//         needed_area, so "highest-priority entry with needed_area <=
//         bound" is one left-first descent.
// A task lives in exactly one bucket and one group, so memory stays O(Q).
// The index never touches the WorkloadMeter — the simulator charges the
// analytic step counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resource/index_primitives.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {
class StructureAuditor;    // correctness tooling (src/analysis); read-only
class StructureCorruptor;  // test-only seeded-corruption injector
}  // namespace dreamsim::analysis

namespace dreamsim::resource {

/// The drain-relevant attributes of one suspended task, captured at
/// enqueue time and re-synced whenever a failed drain attempt may have
/// rewritten the task's resolved config.
struct SusEntryAttrs {
  ConfigId resolved_config;  // invalid = not resolved yet
  FamilyId config_family;    // family of resolved config; invalid = any
  Area needed_area = 0;
  double priority = 0.0;

  friend bool operator==(const SusEntryAttrs&,
                         const SusEntryAttrs&) = default;
};

/// Treap ordered by (-priority, seq) — i.e. highest priority first, FIFO
/// ties — augmented with the subtree minimum of needed_area, supporting
/// "first element in order with needed_area <= bound" by left-first
/// descent. Heap priorities are a deterministic hash of seq, so structure
/// (and therefore behaviour) is reproducible across runs.
class AreaTreap {
 public:
  void Insert(double neg_priority, std::uint64_t seq, Area area);
  void Erase(double neg_priority, std::uint64_t seq);
  /// (neg_priority, seq) of the first in-order element with area <=
  /// `bound`, or nullopt.
  [[nodiscard]] std::optional<std::pair<double, std::uint64_t>>
  FirstWithAreaAtMost(Area bound) const;
  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  // The auditor walks the treap to re-derive its in-order content and
  // augmentation from first principles. See entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;

  static constexpr std::int32_t kNull = -1;
  struct Node {
    double neg_priority = 0.0;
    std::uint64_t seq = 0;
    Area area = 0;
    Area min_area = 0;  // min over this subtree
    std::uint64_t heap = 0;
    std::int32_t left = kNull;
    std::int32_t right = kNull;
  };

  [[nodiscard]] Area MinArea(std::int32_t n) const;
  void Pull(std::int32_t n);
  /// Splits `n` into keys < (np, seq) and keys >= (np, seq).
  void Split(std::int32_t n, double np, std::uint64_t seq, std::int32_t& lo,
             std::int32_t& hi);
  [[nodiscard]] std::int32_t Merge(std::int32_t lo, std::int32_t hi);

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_;
  std::int32_t root_ = kNull;
  std::size_t count_ = 0;
};

/// The acceleration structures. Owned by SuspensionQueue; every mutation
/// keeps them in sync, every drain query reads pure index state.
class SusQueueIndex {
 public:
  /// Appends `task` at the back of the FIFO. A task must not already be
  /// present.
  void Add(TaskId task, const SusEntryAttrs& attrs);

  /// Removes `task` (must be present).
  void Remove(TaskId task);

  /// Re-derives `task`'s placement after its attributes changed (no-op
  /// when they did not).
  void Refresh(TaskId task, const SusEntryAttrs& attrs);

  [[nodiscard]] bool Contains(TaskId task) const {
    return slots_.contains(task.value());
  }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Current FIFO position of `task` (0 = oldest). Task must be present.
  [[nodiscard]] std::size_t PositionOf(TaskId task) const;

  // --- Query mirrors (decision only; the caller charges the steps) ---

  /// Oldest entry whose resolved_config == `config` (full-mode exact
  /// match, FIFO policy).
  [[nodiscard]] std::optional<std::size_t> OldestExactMatch(
      ConfigId config) const;

  /// Highest-priority entry whose resolved_config == `config`, FIFO
  /// tie-break (full-mode exact match, priority policy).
  [[nodiscard]] std::optional<std::size_t> BestPriorityExactMatch(
      ConfigId config) const;

  /// Earliest entry at position >= `from` (position of `from_task`; pass
  /// invalid to start at the front) that either exact-matches
  /// `match_config` (when valid) or is family-compatible with `family`
  /// and has needed_area <= `area_bound` — the CouldUseNode predicate /
  /// full-mode fallback, FIFO order.
  [[nodiscard]] std::optional<std::size_t> OldestEligible(
      FamilyId family, Area area_bound, TaskId from_task,
      ConfigId match_config) const;

  /// Highest-priority eligible entry (same predicate), FIFO tie-break.
  [[nodiscard]] std::optional<std::size_t> BestPriorityEligible(
      FamilyId family, Area area_bound, ConfigId match_config) const;

  /// Cross-checks every indexed value against the ground-truth queue and
  /// an attribute oracle; returns one message per violation.
  [[nodiscard]] std::vector<std::string> Validate(
      const std::vector<TaskId>& queue,
      const std::function<SusEntryAttrs(TaskId)>& attrs_of) const;

 private:
  // Correctness tooling (src/analysis): read-only ground-truth diffing and
  // test-only seeded corruption. See entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  struct Slot {
    std::uint64_t seq = 0;
    SusEntryAttrs attrs;
  };

  /// Exact-match candidates sharing one resolved_config.
  struct Bucket {
    std::set<std::uint64_t> by_seq;
    std::set<std::pair<double, std::uint64_t>> by_priority;  // (-prio, seq)
  };

  /// Area-bounded fallback candidates sharing one family constraint.
  struct Group {
    MaxSegTree by_seq;     // seq position -> -needed_area (kNegInf = absent)
    AreaTreap by_priority;
  };

  static constexpr std::uint32_t kWildcardGroup =
      FamilyId().value();  // invalid family value

  [[nodiscard]] static std::uint32_t GroupKeyOf(const SusEntryAttrs& attrs) {
    return attrs.config_family.valid() ? attrs.config_family.value()
                                       : kWildcardGroup;
  }
  void InsertInto(std::uint64_t seq, const SusEntryAttrs& attrs);
  void EraseFrom(std::uint64_t seq, const SusEntryAttrs& attrs);
  /// Sets the group's seq-tree leaf, appending kNegInf padding so that
  /// leaf positions always equal global seqs.
  static void AssignSeqLeaf(Group& group, std::uint64_t seq,
                            std::int64_t value);
  /// Position = number of live entries with a smaller seq.
  [[nodiscard]] std::size_t PositionOfSeq(std::uint64_t seq) const;
  /// The groups a task compatible with `family` may live in.
  [[nodiscard]] std::vector<const Group*> GroupsFor(FamilyId family) const;

  std::unordered_map<std::uint32_t, Slot> slots_;  // by TaskId value
  std::uint64_t next_seq_ = 0;
  PrefixSumTree live_;  // seq -> 1 while queued, 0 after removal
  std::unordered_map<std::uint32_t, Bucket> buckets_;  // by ConfigId value
  std::map<std::uint32_t, Group> groups_;  // by family value (+ wildcard)
};

}  // namespace dreamsim::resource
