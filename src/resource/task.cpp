#include "resource/task.hpp"

#include <stdexcept>

namespace dreamsim::resource {

std::string_view ToString(TaskState state) {
  switch (state) {
    case TaskState::kCreated: return "created";
    case TaskState::kSuspended: return "suspended";
    case TaskState::kRunning: return "running";
    case TaskState::kCompleted: return "completed";
    case TaskState::kDiscarded: return "discarded";
  }
  return "?";
}

TaskId TaskStore::Create(Task task) {
  const auto id = TaskId{static_cast<std::uint32_t>(tasks_.size())};
  task.id = id;
  if (task.required_time <= 0) {
    throw std::invalid_argument("task required_time must be positive");
  }
  if (task.needed_area <= 0) {
    throw std::invalid_argument("task needed_area must be positive");
  }
  tasks_.push_back(task);
  return id;
}

Task& TaskStore::Get(TaskId id) {
  if (!id.valid() || id.value() >= tasks_.size()) {
    throw std::out_of_range("unknown TaskId");
  }
  return tasks_[id.value()];
}

const Task& TaskStore::Get(TaskId id) const {
  return const_cast<TaskStore*>(this)->Get(id);
}

std::size_t TaskStore::CountInState(TaskState state) const {
  std::size_t count = 0;
  for (const Task& t : tasks_) {
    if (t.state == state) ++count;
  }
  return count;
}

}  // namespace dreamsim::resource
