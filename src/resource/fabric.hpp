// Contiguous-placement fabric model (extension).
//
// The paper treats a node's reconfigurable area as a scalar: a
// configuration fits iff ReqArea <= AvailableArea (Eq. 4). On real devices
// a partial bitstream occupies a *contiguous* region (column range), so a
// node can refuse a configuration even though the total free area would
// suffice — external fragmentation. This allocator models the fabric as a
// one-dimensional strip of area units with first/best/worst-fit placement
// and coalescing frees, enabling the fragmentation ablation bench.
//
// Node integrates it optionally (NodeGenParams::contiguous_placement);
// when disabled the simulator reproduces the paper's scalar model exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dreamsim::resource {

/// A contiguous region of fabric: [offset, offset + size).
struct Extent {
  Area offset = 0;
  Area size = 0;

  [[nodiscard]] Area end() const { return offset + size; }
  friend constexpr bool operator==(const Extent&, const Extent&) = default;
};

/// Placement heuristic for choosing among free holes.
enum class Placement : std::uint8_t {
  kFirstFit,  // lowest-offset hole that fits
  kBestFit,   // smallest hole that fits (minimizes leftover slivers)
  kWorstFit,  // largest hole (keeps big holes big... or splinters them)
};

[[nodiscard]] std::string_view ToString(Placement placement);

/// One-dimensional extent allocator over [0, total).
class FabricLayout {
 public:
  explicit FabricLayout(Area total);

  /// Carves a region of `size` units from a free hole chosen by
  /// `placement`. Returns nullopt when no single hole is large enough —
  /// even if the total free area would suffice (fragmentation).
  [[nodiscard]] std::optional<Extent> Allocate(Area size, Placement placement);

  /// Returns a region to the free list, coalescing with neighbours.
  /// Throws std::logic_error if it overlaps existing free space.
  void Free(const Extent& extent);

  /// True when some single hole can host `size` units.
  [[nodiscard]] bool CanAllocate(Area size) const;

  /// True when a hole of `size` units would exist after additionally
  /// freeing `pending` (used by Algorithm 1 under contiguity: "would
  /// reclaiming these idle regions make the new configuration fit?").
  [[nodiscard]] bool CanAllocateAfterFreeing(std::span<const Extent> pending,
                                             Area size) const;

  [[nodiscard]] Area total() const { return total_; }
  [[nodiscard]] Area free_area() const;
  [[nodiscard]] Area largest_free_extent() const;

  /// External fragmentation in [0, 1]: 1 - largest_hole / free_area
  /// (0 when free space is one hole or the fabric is full).
  [[nodiscard]] double FragmentationIndex() const;

  /// Number of disjoint free holes.
  [[nodiscard]] std::size_t hole_count() const { return free_.size(); }

  /// Resets to a fully free fabric.
  void Reset();

  /// Structural validation (holes sorted, disjoint, within bounds);
  /// empty result means consistent.
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  Area total_;
  std::vector<Extent> free_;  // sorted by offset, pairwise disjoint
};

}  // namespace dreamsim::resource
