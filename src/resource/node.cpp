#include "resource/node.hpp"

#include <stdexcept>

namespace dreamsim::resource {

Node::Node(NodeId id, Area total_area, FamilyId family, Caps caps,
           bool contiguous_placement, Placement placement)
    : id_(id),
      total_area_(total_area),
      available_area_(total_area),
      family_(family),
      caps_(caps),
      placement_(placement) {
  if (total_area <= 0) {
    throw std::invalid_argument("node total_area must be positive");
  }
  if (contiguous_placement) layout_.emplace(total_area);
}

const FabricLayout& Node::layout() const {
  if (!layout_) throw std::logic_error("node has no contiguous fabric layout");
  return *layout_;
}

const Extent& Node::SlotExtent(SlotIndex slot) const {
  if (!layout_) throw std::logic_error("node has no contiguous fabric layout");
  if (!SlotLive(slot)) throw std::out_of_range("SlotExtent: dead slot");
  return slot_extents_[slot];
}

bool Node::CanHost(Area area) const {
  if (failed_) return false;
  if (layout_) return layout_->CanAllocate(area);
  return available_area_ >= area;
}

bool Node::CanHostAfterReclaiming(std::span<const SlotIndex> idle_slots,
                                  Area area) const {
  if (!layout_) {
    // Scalar model: feasibility is the store's accumulated-area test
    // (the node does not know configuration areas, only ids).
    throw std::logic_error(
        "CanHostAfterReclaiming requires contiguous placement");
  }
  std::vector<Extent> pending;
  pending.reserve(idle_slots.size());
  for (const SlotIndex slot : idle_slots) {
    if (!Slot(slot).idle()) throw std::logic_error("reclaiming a busy slot");
    pending.push_back(slot_extents_[slot]);
  }
  return layout_->CanAllocateAfterFreeing(pending, area);
}

std::optional<SlotIndex> Node::TrySendBitstream(const Configuration& config) {
  if (failed_) return std::nullopt;
  if (config.required_area > available_area_) return std::nullopt;
  Extent extent{0, config.required_area};
  if (layout_) {
    const auto allocated = layout_->Allocate(config.required_area, placement_);
    if (!allocated) return std::nullopt;  // fragmented
    extent = *allocated;
  }
  SlotIndex slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = ConfigTaskPair{config.id, TaskId::invalid()};
  } else {
    slot = static_cast<SlotIndex>(slots_.size());
    slots_.emplace_back(ConfigTaskPair{config.id, TaskId::invalid()});
    if (layout_) slot_extents_.emplace_back();
  }
  if (layout_) slot_extents_[slot] = extent;
  available_area_ -= config.required_area;
  ++live_entries_;
  ++reconfig_count_;
  return slot;
}

SlotIndex Node::SendBitstream(const Configuration& config) {
  const auto slot = TrySendBitstream(config);
  if (!slot) {
    throw std::logic_error(
        "SendBitstream: configuration does not fit (area or fragmentation)");
  }
  return *slot;
}

void Node::MakeNodeBlank() {
  if (running_tasks_ > 0) {
    throw std::logic_error("MakeNodeBlank: node has running tasks");
  }
  slots_.clear();
  free_slots_.clear();
  slot_extents_.clear();
  live_entries_ = 0;
  available_area_ = total_area_;
  if (layout_) layout_->Reset();
}

void Node::MarkFailed() {
  if (failed_) throw std::logic_error("MarkFailed: node already failed");
  if (!blank()) {
    throw std::logic_error("MarkFailed: node still holds configurations");
  }
  failed_ = true;
}

void Node::MarkRepaired() {
  if (!failed_) throw std::logic_error("MarkRepaired: node is not failed");
  failed_ = false;
}

void Node::MakeNodePartiallyBlank(SlotIndex slot, Area reclaimed_area) {
  const ConfigTaskPair& pair = Slot(slot);
  if (!pair.idle()) {
    throw std::logic_error("MakeNodePartiallyBlank: slot is executing a task");
  }
  if (reclaimed_area < 0 || available_area_ + reclaimed_area > total_area_) {
    throw std::logic_error("MakeNodePartiallyBlank: area accounting violated");
  }
  if (layout_) {
    const Extent& extent = slot_extents_[slot];
    if (extent.size != reclaimed_area) {
      throw std::logic_error(
          "MakeNodePartiallyBlank: reclaimed area disagrees with the extent");
    }
    layout_->Free(extent);
  }
  slots_[slot].reset();
  free_slots_.push_back(slot);
  --live_entries_;
  available_area_ += reclaimed_area;
  if (live_entries_ == 0) {
    // All slots gone: normalize storage like MakeNodeBlank().
    slots_.clear();
    free_slots_.clear();
    slot_extents_.clear();
  }
}

void Node::AddTaskToNode(SlotIndex slot, TaskId task) {
  if (!SlotLive(slot)) throw std::out_of_range("AddTaskToNode: dead slot");
  ConfigTaskPair& pair = *slots_[slot];
  if (!pair.idle()) throw std::logic_error("AddTaskToNode: slot already busy");
  if (!task.valid()) throw std::invalid_argument("AddTaskToNode: invalid task");
  pair.task = task;
  ++running_tasks_;
}

void Node::RemoveTaskFromNode(SlotIndex slot) {
  if (!SlotLive(slot)) throw std::out_of_range("RemoveTaskFromNode: dead slot");
  ConfigTaskPair& pair = *slots_[slot];
  if (pair.idle()) throw std::logic_error("RemoveTaskFromNode: slot is idle");
  pair.task = TaskId::invalid();
  --running_tasks_;
}

const ConfigTaskPair& Node::Slot(SlotIndex slot) const {
  if (!SlotLive(slot)) throw std::out_of_range("dead slot");
  return *slots_[slot];
}

}  // namespace dreamsim::resource
