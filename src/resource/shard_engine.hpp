// Sharded parallel answer engine for the ResourceStore scheduler queries
// (DESIGN.md §13).
//
// The node population is partitioned into K shards by a pure function of
// (node id, family) — never insertion order or thread ids — and each shard
// owns a sparse StoreIndex over its members. A scheduler decision is
// answered in two steps:
//   1. every shard independently computes its local best candidate for each
//      of the hot node-selection queries (in parallel on a persistent
//      ShardPool when the store runs scan mode; serially from the
//      shard-local indexes when the scheduler index is on, where per-shard
//      work is O(log N) and a thread broadcast would cost more than it
//      saves);
//   2. a deterministic merge reduces the per-shard answers in fixed shard
//      order 0..K-1 on keys of (area, node id) — bit-identical to the
//      winner the sequential scan would have picked.
// The engine never touches the WorkloadMeter: the store charges the
// analytic step counts of the reference scans at merge time (the
// modeled-effort contract), using the per-shard Fenwick slot totals for the
// Algorithm 1 slot-visit terms.
//
// Per-shard answers for one (area, family) key are computed in batched
// broadcasts and cached until the next mutation (epoch bump). The batch is
// split into lazy query groups so the engine never does more aggregate work
// than the sequential kernel it replaces: the blank-node candidate (the
// common phase-2 hit) is one cheap pass, and the four deep-phase queries
// (partially-blank, idle-configured, busy-fit, Algorithm 1) share a single
// combined pass computed only when a decision actually reaches them —
// one fork-join answering four scans. Ranked-host (heuristic policies) is
// its own group.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "resource/store.hpp"
#include "resource/store_index.hpp"
#include "sim/shard_pool.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dreamsim::resource {

/// The shard partition plus per-shard indexes and the decision cache.
/// Owned by ResourceStore; every store mutation calls Refresh().
class ShardEngine {
 public:
  /// `threads` of 0 picks min(shards, hardware concurrency).
  ShardEngine(const ConfigCatalogue& configs, std::size_t shards,
              std::size_t threads, ShardBy by);
  ~ShardEngine();

  /// (Re-)binds the store's backing vectors. The engine keeps pointers to
  /// the vector objects themselves, so the owning store must re-call this
  /// after moving.
  void Bind(const ConfigCatalogue& configs, const std::vector<Node>& nodes,
            const std::vector<NodeId>& blank,
            const std::vector<std::size_t>& blank_pos,
            const std::vector<Area>& busy_area);

  /// Registers a node (ids must arrive in ascending dense order, as in the
  /// store) and assigns it to its shard.
  void AddNode(const Node& node, Area busy_area);

  /// Re-derives the node's shard-index entries and invalidates the
  /// decision cache.
  void Refresh(const Node& node, Area busy_area);

  /// Selects the answer flavour: shard-local index queries (true) or
  /// parallel member scans (false). Mirrors the store's index mode.
  void SetIndexed(bool enabled);
  [[nodiscard]] bool indexed() const { return indexed_; }

  /// Keys the decision cache to one (area, family) pair and computes the
  /// common-case blank-candidate group. Called by the scheduler ahead of a
  /// decision's queries; each query also ensures its own group lazily.
  void PrefetchDecision(Area needed_area, FamilyId family);

  // --- Merged decision mirrors (no step charges; the store charges) ---

  [[nodiscard]] std::optional<NodeId> BestBlank(Area needed_area,
                                                FamilyId family);
  [[nodiscard]] std::optional<NodeId> BestPartiallyBlank(Area needed_area,
                                                         FamilyId family);
  [[nodiscard]] std::optional<NodeId> BestIdleConfigured(Area needed_area,
                                                         FamilyId family);
  [[nodiscard]] std::optional<NodeId> AnyBusyFitNode(Area needed_area,
                                                     FamilyId family);
  [[nodiscard]] std::optional<ReconfigPlan> FindAnyIdle(Area needed_area,
                                                        FamilyId family);
  [[nodiscard]] std::optional<NodeId> RankedHost(Area needed_area,
                                                 HostRank rank,
                                                 FamilyId family);

  /// FindBestIdleEntry over one idle list: each shard scans its own
  /// partition bucket of the list in parallel, then a fixed shard-order
  /// merge on (available area, global cell position) reduces the local
  /// winners — the global position carried by every ShardCell makes the
  /// tie-break identical to the sequential FindMin. Falls back to the
  /// sequential cell scan below kParallelIdleScanMin or when the list is
  /// not partitioned. Not part of the decision bundle (keyed by config,
  /// and it has no index fast path in either kernel).
  [[nodiscard]] std::optional<EntryRef> BestIdleEntry(
      const EntryList& list) const;

  // --- Analytic-charge helpers (Algorithm 1 slot-visit terms) ---

  /// Sum over shards of live-slot counts of family-compatible members with
  /// id < `bound_id`.
  [[nodiscard]] Steps LiveSlotPrefixBefore(FamilyId family,
                                           std::uint32_t bound_id) const;
  /// Sum over shards of live-slot counts of family-compatible members.
  [[nodiscard]] Steps LiveSlotTotal(FamilyId family) const;

  // --- Introspection (auditor, tests, benches) ---

  [[nodiscard]] std::size_t shard_count() const { return members_.size(); }
  [[nodiscard]] ShardBy shard_by() const { return by_; }
  [[nodiscard]] std::size_t threads() const { return pool_->threads(); }
  /// True when the pool has real workers. With one thread the scan-mode
  /// broadcast buys nothing and loses the reference scans' early exits, so
  /// the store answers from its own sequential scans instead (identical
  /// results; the differential suite pins the equivalence).
  [[nodiscard]] bool parallel() const { return pool_->threads() > 1; }
  [[nodiscard]] const std::vector<std::uint32_t>& members(
      std::size_t shard) const {
    return members_[shard];
  }
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t id) const {
    return shard_of_[id];
  }
  /// The node-id -> shard map the EntryList partitions key off. The vector
  /// object lives as long as the engine (the store hands its address to
  /// every list via EntryList::SetPartition).
  [[nodiscard]] const std::vector<std::uint32_t>& shard_map() const {
    return shard_of_;
  }
  [[nodiscard]] const StoreIndex& shard_index(std::size_t shard) const {
    return *indexes_[shard];
  }

  /// Self-check: partition exactness plus every shard index against ground
  /// truth. Returns one message per violation (empty = consistent).
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  /// One shard's local winners for a (area, family) decision key.
  struct ShardAnswer {
    std::optional<NodeId> blank;
    Area blank_total = 0;
    std::size_t blank_list_pos = 0;
    std::optional<NodeId> partial;
    Area partial_avail = 0;
    std::optional<NodeId> idle_cfg;
    Area idle_cfg_total = 0;
    std::optional<NodeId> busy_fit;
    std::optional<ReconfigPlan> any_idle;
    std::optional<NodeId> first_fit;
    std::optional<NodeId> best_fit;
    Area best_fit_avail = 0;
    std::optional<NodeId> worst_fit;
    Area worst_fit_avail = 0;
  };

  /// Lazily computed slices of a ShardAnswer: a group's queries share one
  /// broadcast, and a group no decision reaches is never computed.
  enum class QueryGroup : std::uint8_t {
    kBlank = 0,   // BestBlank (the common phase-2 hit)
    kRest,        // partial / idle-configured / busy-fit / Algorithm 1
    kRanked,      // first/best/worst fit (heuristic policies)
  };
  static constexpr std::size_t kQueryGroups = 3;

  struct Bundle {
    bool keyed = false;
    bool have[kQueryGroups] = {false, false, false};
    std::uint64_t epoch = 0;
    Area area = 0;
    std::uint32_t family_raw = 0;
    std::vector<ShardAnswer> answers;  // indexed by shard
  };

  void EnsureBundle(Area needed_area, FamilyId family, QueryGroup group)
      REQUIRES(sim_role_);
  void ComputeScan(std::size_t shard, Area needed_area, FamilyId family,
                   QueryGroup group, ShardAnswer& answer) const;
  void ComputeIndexed(std::size_t shard, Area needed_area, FamilyId family,
                      QueryGroup group, ShardAnswer& answer) const;
  /// Mirrors the Algorithm 1 inner loop (see StoreIndex::ReplayReclaimScan).
  [[nodiscard]] std::optional<ReconfigPlan> ReplayReclaim(
      const Node& node, Area needed_area) const;
  [[nodiscard]] std::uint32_t ShardOf(const Node& node) const;

  const ConfigCatalogue* configs_;
  const std::vector<Node>* nodes_ = nullptr;
  const std::vector<NodeId>* blank_ = nullptr;
  const std::vector<std::size_t>* blank_pos_view_ = nullptr;
  const std::vector<Area>* busy_area_view_ = nullptr;
  ShardBy by_;
  bool indexed_ = true;
  /// Thread-ownership contract (DESIGN.md §17): the decision cache and its
  /// epoch are mutated by the simulation thread only — pool jobs write
  /// exclusively into their own ShardAnswer slot, handed to them by
  /// reference. Every public mutator/query asserts the role; a new helper
  /// touching the cache without it fails under -Werror=thread-safety.
  /// members_/indexes_/shard_of_ are read shared by the broadcast jobs and
  /// mutated only between broadcasts (TSan covers that phase discipline).
  util::ThreadRole sim_role_;
  std::vector<std::vector<std::uint32_t>> members_;  // shard -> ascending ids
  std::vector<std::unique_ptr<StoreIndex>> indexes_;  // sparse, per shard
  std::vector<std::uint32_t> shard_of_;               // node id -> shard
  /// Bumped on every mutation; keys the cache.
  std::uint64_t epoch_ GUARDED_BY(sim_role_) = 0;
  Bundle bundle_ GUARDED_BY(sim_role_);
  std::unique_ptr<sim::ShardPool> pool_;
};

}  // namespace dreamsim::resource
