#include "resource/entry_list.hpp"

namespace dreamsim::resource {

void EntryList::Add(EntryRef entry, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  cells_.push_back(entry);
}

bool EntryList::Remove(EntryRef entry, WorkloadMeter& meter) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    meter.Add(StepKind::kHousekeeping);
    if (cells_[i] == entry) {
      cells_[i] = cells_.back();
      cells_.pop_back();
      return true;
    }
  }
  return false;
}

bool EntryList::Contains(EntryRef entry, WorkloadMeter& meter,
                         StepKind kind) const {
  for (const EntryRef& e : cells_) {
    meter.Add(kind);
    if (e == entry) return true;
  }
  return false;
}

}  // namespace dreamsim::resource
