#include "resource/entry_list.hpp"

namespace dreamsim::resource {

namespace {

/// splitmix64 finalizer. Packed EntryRefs are (node << 32) | slot with
/// dense node ids and tiny slot indexes, so an identity hash would pile
/// every key onto the first few probe slots; this spreads them.
constexpr std::uint64_t MixKey(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Table grows before use exceeds 11/16 of capacity.
constexpr bool OverLoaded(std::size_t used, std::size_t capacity) {
  return used * 16 > capacity * 11;
}

}  // namespace

std::size_t EntryList::ProbeStart(std::uint64_t key) const {
  return static_cast<std::size_t>(MixKey(key)) & (table_.size() - 1);
}

std::size_t EntryList::FindSlot(std::uint64_t key) const {
  if (table_.empty()) return 0;  // == table_.size(): absent
  const std::size_t mask = table_.size() - 1;
  std::size_t i = ProbeStart(key);
  while (table_[i].key != PosSlot::kEmptyKey) {
    if (table_[i].key == key) return i;
    i = (i + 1) & mask;
  }
  return table_.size();
}

EntryList::PosSlot& EntryList::InsertSlot(std::uint64_t key) {
  if (table_.empty()) {
    Rehash(16);
  } else if (OverLoaded(table_used_ + 1, table_.size())) {
    Rehash(table_.size() * 2);
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t i = ProbeStart(key);
  while (table_[i].key != PosSlot::kEmptyKey && table_[i].key != key) {
    i = (i + 1) & mask;
  }
  if (table_[i].key == PosSlot::kEmptyKey) {
    table_[i].key = key;
    ++table_used_;
  }
  return table_[i];
}

void EntryList::EraseSlot(std::size_t index) {
  // Backward-shift deletion: pull displaced probe-chain members into the
  // hole so lookups never need tombstones.
  const std::size_t mask = table_.size() - 1;
  std::size_t i = index;
  std::size_t j = index;
  while (true) {
    j = (j + 1) & mask;
    if (table_[j].key == PosSlot::kEmptyKey) break;
    const std::size_t ideal = ProbeStart(table_[j].key);
    // Leave the element where it is only when its ideal slot lies
    // cyclically within (i, j] — moving it to i would break its chain.
    const bool reaches_past_hole = i <= j ? (ideal > i && ideal <= j)
                                          : (ideal > i || ideal <= j);
    if (!reaches_past_hole) {
      table_[i] = table_[j];
      i = j;
    }
  }
  table_[i].key = PosSlot::kEmptyKey;
  --table_used_;
}

void EntryList::Rehash(std::size_t capacity) {
  std::vector<PosSlot> old = std::move(table_);
  table_.assign(capacity, PosSlot{});
  const std::size_t mask = capacity - 1;
  for (const PosSlot& slot : old) {
    if (slot.key == PosSlot::kEmptyKey) continue;
    std::size_t i = ProbeStart(slot.key);
    while (table_[i].key != PosSlot::kEmptyKey) i = (i + 1) & mask;
    table_[i] = slot;
  }
}

void EntryList::Reserve(std::size_t n) {
  cells_.reserve(n);
  std::size_t capacity = 16;
  while (OverLoaded(n, capacity)) capacity *= 2;
  if (capacity > table_.size()) Rehash(capacity);
}

void EntryList::SetPartition(const std::vector<std::uint32_t>* shard_of,
                             std::size_t shards) {
  shard_of_ = shard_of;
  buckets_.clear();
  if (shard_of_ == nullptr) return;
  buckets_.resize(shards);
  for (std::size_t pos = 0; pos < cells_.size(); ++pos) {
    std::vector<ShardCell>& bucket = buckets_[ShardOfNode(cells_[pos].node)];
    table_[FindSlot(PackEntryRef(cells_[pos]))].bucket_pos =
        static_cast<std::uint32_t>(bucket.size());
    bucket.push_back({cells_[pos], static_cast<std::uint32_t>(pos)});
  }
}

void EntryList::Add(EntryRef entry, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  const auto gpos = static_cast<std::uint32_t>(cells_.size());
  PosSlot& slot = InsertSlot(PackEntryRef(entry));
  slot.pos = gpos;
  cells_.push_back(entry);
  if (shard_of_ != nullptr) {
    std::vector<ShardCell>& bucket = buckets_[ShardOfNode(entry.node)];
    slot.bucket_pos = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back({entry, gpos});
  }
}

bool EntryList::Remove(EntryRef entry, WorkloadMeter& meter) {
  const std::uint64_t key = PackEntryRef(entry);
  const std::size_t found = FindSlot(key);
  if (found == table_.size()) {
    // The counted search would have walked the whole list before giving up.
    meter.Add(StepKind::kHousekeeping, cells_.size());
    return false;
  }
  const std::size_t pos = table_[found].pos;
  const std::uint32_t bpos = table_[found].bucket_pos;
  // The counted search visits pos + 1 cells to find the entry.
  meter.Add(StepKind::kHousekeeping, pos + 1);
  const EntryRef moved = cells_.back();
  cells_[pos] = moved;
  cells_.pop_back();
  if (pos < cells_.size()) {  // moved != entry
    PosSlot& moved_slot = table_[FindSlot(PackEntryRef(moved))];
    moved_slot.pos = static_cast<std::uint32_t>(pos);
    if (shard_of_ != nullptr) {
      // The moved cell's global position changed; its bucket mirror must
      // carry the new tie-break key.
      buckets_[ShardOfNode(moved.node)][moved_slot.bucket_pos].gpos =
          static_cast<std::uint32_t>(pos);
    }
  }
  if (shard_of_ != nullptr) {
    std::vector<ShardCell>& bucket = buckets_[ShardOfNode(entry.node)];
    const ShardCell bucket_moved = bucket.back();
    bucket[bpos] = bucket_moved;
    bucket.pop_back();
    if (bpos < bucket.size()) {  // bucket_moved != entry's own cell
      table_[FindSlot(PackEntryRef(bucket_moved.entry))].bucket_pos = bpos;
    }
  }
  EraseSlot(found);
  return true;
}

bool EntryList::Contains(EntryRef entry, WorkloadMeter& meter,
                         StepKind kind) const {
  for (const EntryRef& e : cells_) {
    meter.Add(kind);
    if (e == entry) return true;
  }
  return false;
}

bool EntryList::PositionsConsistent() const {
  if (table_used_ != cells_.size()) return false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::size_t slot = FindSlot(PackEntryRef(cells_[i]));
    if (slot == table_.size() || table_[slot].pos != i) return false;
  }
  return true;
}

bool EntryList::PartitionConsistent() const {
  if (shard_of_ == nullptr) return true;
  std::size_t mirrored = 0;
  for (std::size_t s = 0; s < buckets_.size(); ++s) {
    // EntryList's buckets_ is an ordered vector (the name collides with
    // SusQueueIndex's unordered map); shards are visited in index order.
    // lint: allow(unordered-merge)
    for (const ShardCell& cell : buckets_[s]) {
      if (cell.gpos >= cells_.size()) return false;
      if (!(cells_[cell.gpos] == cell.entry)) return false;
      if (cell.entry.node.value() >= shard_of_->size() ||
          ShardOfNode(cell.entry.node) != s) {
        return false;
      }
    }
    mirrored += buckets_[s].size();
  }
  if (mirrored != cells_.size()) return false;
  // bucket_pos: the exact inverse of the bucket contents.
  for (const EntryRef& entry : cells_) {
    const std::size_t slot = FindSlot(PackEntryRef(entry));
    if (slot == table_.size()) return false;
    if (entry.node.value() >= shard_of_->size()) return false;
    const std::vector<ShardCell>& bucket = buckets_[ShardOfNode(entry.node)];
    const std::uint32_t bpos = table_[slot].bucket_pos;
    if (bpos >= bucket.size() || !(bucket[bpos].entry == entry)) return false;
  }
  return true;
}

}  // namespace dreamsim::resource
