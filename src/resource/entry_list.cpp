#include "resource/entry_list.hpp"

namespace dreamsim::resource {

void EntryList::Add(EntryRef entry, WorkloadMeter& meter) {
  meter.Add(StepKind::kHousekeeping);
  positions_[entry] = cells_.size();
  cells_.push_back(entry);
}

bool EntryList::Remove(EntryRef entry, WorkloadMeter& meter) {
  const auto it = positions_.find(entry);
  if (it == positions_.end()) {
    // The counted search would have walked the whole list before giving up.
    meter.Add(StepKind::kHousekeeping, cells_.size());
    return false;
  }
  const std::size_t pos = it->second;
  // The counted search visits pos + 1 cells to find the entry.
  meter.Add(StepKind::kHousekeeping, pos + 1);
  positions_.erase(it);
  const EntryRef moved = cells_.back();
  cells_[pos] = moved;
  cells_.pop_back();
  if (pos < cells_.size()) positions_[moved] = pos;
  return true;
}

bool EntryList::Contains(EntryRef entry, WorkloadMeter& meter,
                         StepKind kind) const {
  for (const EntryRef& e : cells_) {
    meter.Add(kind);
    if (e == entry) return true;
  }
  return false;
}

bool EntryList::PositionsConsistent() const {
  if (positions_.size() != cells_.size()) return false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto it = positions_.find(cells_[i]);
    if (it == positions_.end() || it->second != i) return false;
  }
  return true;
}

}  // namespace dreamsim::resource
