// Application tasks (Eq. 3) and the task store.
//
//   Task_i(t_required, C_pref, data)
//
// A task asks for a preferred processor configuration; when that is not in
// the catalogue the scheduler falls back to the closest match by area. The
// store owns every generated task and tracks its lifecycle and the
// timestamps the metrics system needs (Eq. 8/9).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace dreamsim::resource {

/// Lifecycle of a task inside the simulator.
enum class TaskState : std::uint8_t {
  kCreated,    // generated, not yet scheduled
  kSuspended,  // parked in the suspension queue
  kRunning,    // executing on a node
  kCompleted,  // finished
  kDiscarded,  // rejected: no feasible configuration/node
};

[[nodiscard]] std::string_view ToString(TaskState state);

/// One application task (Eq. 3) plus scheduling bookkeeping.
struct Task {
  TaskId id;

  /// Preferred processor configuration C_pref. May name a configuration
  /// that does not exist in the catalogue (the paper's 15% closest-match
  /// experiments); the scheduler then matches by `needed_area`.
  ConfigId preferred_config;

  /// Area of the preferred configuration (drives closest-match search).
  Area needed_area = 0;

  /// Execution time on C_pref (t_required).
  Tick required_time = 0;

  /// Size of the task's input `data` (shipped over the network model).
  Bytes data_size = 0;

  /// Scheduling priority under priority_scheduling (higher wins; ties are
  /// FIFO). The task-graph session sets this to the vertex's upward rank.
  double priority = 0.0;

  // --- Mutable scheduling state ---
  TaskState state = TaskState::kCreated;
  /// Cached result of the first ResolveConfig() for this task (C_pref when
  /// it exists in the catalogue, else the closest match). Lets the
  /// suspension-queue prefilters test config compatibility in O(1).
  ConfigId resolved_config;
  /// Configuration actually used (C_pref or closest match).
  ConfigId assigned_config;
  /// Node the task ran on (diagnostics).
  NodeId assigned_node;
  Tick create_time = kNoTick;
  Tick start_time = kNoTick;       // submission to the node (Eq. 8 t_start)
  Tick completion_time = kNoTick;
  /// Communication + configuration components of the wait (Eq. 8).
  Tick comm_time = 0;
  Tick config_wait = 0;
  /// Times the task was re-queued from the suspension queue.
  std::uint32_t sus_retry = 0;
  /// Times a node failure killed this task mid-execution (fault injection).
  std::uint32_t kill_count = 0;

  /// Waiting time per Eq. 8: t_start - t_create + t_comm + t_config.
  /// Only meaningful once the task has started.
  [[nodiscard]] Tick WaitingTime() const {
    return start_time - create_time + comm_time + config_wait;
  }

  /// Total time in system: completion - creation (Table I "average running
  /// time of each task").
  [[nodiscard]] Tick TurnaroundTime() const {
    return completion_time - create_time;
  }
};

/// Owning, densely indexed container of all generated tasks.
class TaskStore {
 public:
  /// CreateTask(): registers a task; the stored copy receives its id.
  TaskId Create(Task task);

  [[nodiscard]] Task& Get(TaskId id);
  [[nodiscard]] const Task& Get(TaskId id) const;
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const std::vector<Task>& all() const { return tasks_; }

  /// Number of tasks currently in `state`.
  [[nodiscard]] std::size_t CountInState(TaskState state) const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace dreamsim::resource
