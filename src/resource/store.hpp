// ResourceStore: the resource information manager's dynamic data structures
// (Sec. IV-B, Fig. 3) behind one consistent interface.
//
// It owns the nodes, the configuration catalogue, the per-configuration
// idle/busy lists, the blank-node list, and the workload meter. Every query
// the scheduler runs is a counted traversal; every mutation keeps the lists
// consistent with the node slot states (the invariant the property tests
// check via ValidateConsistency()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "resource/config.hpp"
#include "resource/entry_list.hpp"
#include "resource/node.hpp"
#include "resource/workload_meter.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::resource {

class StoreIndex;

/// Result of Algorithm 1 (FindAnyIdleNode): a reconfigurable node plus the
/// idle entries whose removal frees enough area for the new configuration.
struct ReconfigPlan {
  NodeId node;
  std::vector<SlotIndex> removable_entries;
};

/// Host-selection order for FindRankedHostNode (the heuristic baselines'
/// Class B search over every node).
enum class HostRank : std::uint8_t {
  kFirstFit,  // first fitting node in id order
  kBestFit,   // minimum AvailableArea among fitting nodes (ties: min id)
  kWorstFit,  // maximum AvailableArea among fitting nodes (ties: min id)
};

/// Node-to-shard assignment rule for the sharded kernel (DESIGN.md §13).
/// Both rules are pure functions of (node id, family, shard count), so the
/// partition — and with it every merged decision — is reproducible.
enum class ShardBy : std::uint8_t {
  kRoundRobin,  // id % shards
  kFamily,      // family % shards (config-class locality)
};

class ShardEngine;

/// Owning store of nodes + configurations + membership lists.
class ResourceStore {
 public:
  explicit ResourceStore(ConfigCatalogue configs);
  ~ResourceStore();
  ResourceStore(ResourceStore&&) noexcept;
  ResourceStore& operator=(ResourceStore&&) noexcept;

  // --- Construction of the node population ---

  /// Adds one node; returns its id. `contiguous` enables the
  /// fabric-placement extension on this node.
  NodeId AddNode(Area total_area, FamilyId family = FamilyId{0},
                 Caps caps = {}, Tick network_delay = 0,
                 bool contiguous = false,
                 Placement placement = Placement::kFirstFit);

  /// InitNodes(): generates `params.count` nodes with uniformly distributed
  /// TotalArea in [min_area, max_area] (Table II), families assigned
  /// round-robin, caps scaled with area.
  void InitNodes(const NodeGenParams& params, Rng& rng);

  /// Heterogeneous-population variant (scenario `device class:` blocks):
  /// generates each class in order, class index == FamilyId. Every class
  /// draws from its own deterministic sub-stream of `seed_base` so classes
  /// are statistically decoupled — except class 0, which consumes
  /// Rng(seed_base) exactly like InitNodes() does, so a single-class
  /// population with matching ranges is bit-identical to the homogeneous
  /// path (the scenario differential contract, DESIGN.md §15).
  void InitDeviceClasses(std::span<const DeviceClassParams> classes,
                         std::uint64_t seed_base);

  // --- Accessors ---

  [[nodiscard]] const ConfigCatalogue& configs() const { return configs_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] WorkloadMeter& meter() { return meter_; }
  [[nodiscard]] const WorkloadMeter& meter() const { return meter_; }

  [[nodiscard]] const EntryList& idle_list(ConfigId config) const;
  [[nodiscard]] const EntryList& busy_list(ConfigId config) const;
  [[nodiscard]] std::size_t blank_node_count() const { return blank_.size(); }
  [[nodiscard]] std::size_t failed_node_count() const { return failed_count_; }

  // --- Indexed fast path (DESIGN.md "Scheduler index") ---

  /// Enables/disables the O(log N) query index. Decisions and WorkloadMeter
  /// charges are bit-identical either way; off means every query runs the
  /// literal counted scan. Rebuilds from current node state, so it can be
  /// toggled at any point. Default: enabled.
  void SetIndexed(bool enabled);
  [[nodiscard]] bool indexed() const { return index_ != nullptr; }

  // --- Sharded parallel kernel (DESIGN.md §13) ---

  /// Partitions the node population into `shards` shards answered on a
  /// persistent pool of `threads` OS threads (0 = one per shard, capped at
  /// hardware concurrency). `shards` <= 1 disables sharding. Decisions and
  /// WorkloadMeter charges stay bit-identical to the sequential kernel:
  /// each shard answers the hot node-selection queries over its members
  /// only, and a fixed shard-order merge on (area, node id) keys — never
  /// shard or thread ids — picks the global winner. With the scheduler
  /// index enabled the shards answer from shard-local sparse StoreIndexes
  /// instead of parallel scans. Rebuilds from current node state, so it
  /// can be toggled at any point.
  void SetShards(std::size_t shards, std::size_t threads = 0,
                 ShardBy by = ShardBy::kRoundRobin);
  [[nodiscard]] bool sharded() const { return shard_ != nullptr; }
  [[nodiscard]] const ShardEngine* shard_engine() const { return shard_.get(); }

  /// Hints the sharded engine that the next queries share one
  /// (area, family) key, letting it answer all of them from a single
  /// broadcast. No-op without shards; never changes results.
  void PrefetchDecision(Area needed_area, FamilyId family);

  /// TotalArea minus the areas of busy entries: the Algorithm 1 upper bound
  /// on what reclaiming idle entries could free ("max reclaimable area").
  /// O(1); not charged to the meter (metric bookkeeping, not search).
  [[nodiscard]] Area ReclaimablePotential(NodeId id) const;

  /// True when `id` could host `needed_area` now or after reclaiming its
  /// idle entries — the exact outcome of the suspension-drain prefilter's
  /// idle-area accumulation, answered in O(1). Not charged to the meter
  /// (the reference accumulation is not either).
  [[nodiscard]] bool CouldEventuallyHost(NodeId id, Area needed_area) const;

  /// The threshold form of CouldEventuallyHost: the largest area for which
  /// it returns true (it is monotone in `needed_area`). Lets the drain
  /// index evaluate the prefilter for a whole queue with one bound.
  [[nodiscard]] Area CouldEventuallyHostBound(NodeId id) const;

  // --- Counted scheduler queries (StepKind::kSchedulingSearch) ---

  /// FindBestNode(): among idle entries configured with `config`, the one
  /// on the node with minimum AvailableArea ("so that the nodes with larger
  /// AvailableArea are utilized for later re-configurations").
  [[nodiscard]] std::optional<EntryRef> FindBestIdleEntry(ConfigId config);

  /// Best blank node for a configuration of `needed_area`: minimum
  /// TotalArea among blank nodes that fit it. A valid `family` restricts
  /// candidates to that device family (bitstream compatibility, Eq. 1/2);
  /// invalid means unconstrained (the paper's single-family evaluation).
  [[nodiscard]] std::optional<NodeId> FindBestBlankNode(
      Area needed_area, FamilyId family = FamilyId::invalid());

  /// FindBestPartiallyBlankNode(): non-blank node with AvailableArea >=
  /// needed_area, minimizing AvailableArea (tightest fit). Family filter
  /// as in FindBestBlankNode().
  [[nodiscard]] std::optional<NodeId> FindBestPartiallyBlankNode(
      Area needed_area, FamilyId family = FamilyId::invalid());

  /// FindAnyIdleNode() — Algorithm 1: a node whose AvailableArea plus the
  /// areas of its idle entries reaches `needed_area`; reports which idle
  /// entries to reclaim. The entry list is the minimal prefix (in slot
  /// order) that reaches the target, as in the paper's pseudo-code.
  /// Family filter as in FindBestBlankNode().
  [[nodiscard]] std::optional<ReconfigPlan> FindAnyIdleNode(
      Area needed_area, FamilyId family = FamilyId::invalid());

  /// True when some currently busy node could *eventually* host a
  /// configuration of `needed_area` (TotalArea large enough) — the paper's
  /// "query busy list for potential candidate" before suspending.
  /// Family filter as in FindBestBlankNode().
  [[nodiscard]] bool AnyBusyNodeCouldFit(
      Area needed_area, FamilyId family = FamilyId::invalid());

  /// Full-reconfiguration fallback: the configured, idle, non-blank node
  /// with minimum TotalArea >= needed_area (ties: lowest id). Charges one
  /// step per node, like the scan it models.
  [[nodiscard]] std::optional<NodeId> FindBestIdleConfiguredNode(
      Area needed_area, FamilyId family = FamilyId::invalid());

  /// Heuristic Class B host search: the node ranked best by `rank` among
  /// those that can host `needed_area` right now. Charges one step per
  /// node (the reference scan never early-exits).
  [[nodiscard]] std::optional<NodeId> FindRankedHostNode(
      Area needed_area, HostRank rank, FamilyId family = FamilyId::invalid());

  // --- Mutations (housekeeping steps) ---

  /// SendBitstream() + list maintenance: configures `config` onto `node_id`
  /// and registers the fresh idle entry. Throws if the area does not fit.
  EntryRef Configure(NodeId node_id, ConfigId config);

  /// MakeNodePartiallyBlank() + list maintenance: removes one idle entry
  /// and reclaims its area.
  void ReclaimSlot(EntryRef entry);

  /// MakeNodeBlank() + list maintenance: removes every (idle) entry of the
  /// node. Throws if any entry is busy.
  void BlankNode(NodeId node_id);

  /// AddTaskToNode() + list maintenance: idle entry -> busy entry.
  void AssignTask(EntryRef entry, TaskId task);

  /// RemoveTaskFromNode() + list maintenance: busy entry -> idle entry.
  /// Returns the task that was running there.
  TaskId ReleaseTask(EntryRef entry);

  // --- Fault injection (DESIGN.md §10) ---

  /// Node failure: atomically removes the node from every structure —
  /// idle/busy entry lists, the blank list, and the query index — wipes
  /// all of its configurations, and marks it failed. Returns the tasks
  /// that were running there (in slot order) so the simulator can re-enter
  /// them through the suspension path. List removals charge the same
  /// housekeeping steps a completion-time removal would; the charges do
  /// not depend on the index mode. Throws if the node is already failed.
  std::vector<TaskId> FailNode(NodeId node_id);

  /// Node repair: re-inserts the node as a blank node (it pays full
  /// configuration time again). Throws if the node is not failed.
  void RepairNode(NodeId node_id);

  // --- Metrics support ---

  /// Eq. 6: sum of AvailableArea over nodes holding >= 1 configuration.
  /// Not charged to the workload meter (it is metric bookkeeping, not
  /// scheduler effort).
  [[nodiscard]] Area TotalWastedArea() const;

  /// Variant of Eq. 6 restricted to configured nodes that are currently
  /// idle (no running task) — area that is provably going to waste right
  /// now. Backs WasteAccounting::kIdleConfigured.
  [[nodiscard]] Area TotalIdleWastedArea() const;

  /// Sum of reconfig_count over all nodes.
  [[nodiscard]] std::uint64_t TotalReconfigurations() const;

  /// Mean and max external fragmentation across nodes (0 under the scalar
  /// model). Meaningful with NodeGenParams::contiguous_placement.
  struct FragmentationStats {
    double mean = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] FragmentationStats Fragmentation() const;

  /// Number of nodes that performed at least one reconfiguration
  /// (Table I "total used nodes").
  [[nodiscard]] std::size_t UsedNodeCount() const;

  /// Checks every structural invariant (Eq. 4 per node; each live slot in
  /// exactly the matching idle/busy list; blank list exact). Returns a
  /// human-readable description per violation; empty means consistent.
  [[nodiscard]] std::vector<std::string> ValidateConsistency() const;

 private:
  // Correctness tooling (src/analysis): read-only ground-truth diffing and
  // test-only seeded corruption. See entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  static constexpr std::size_t kNotBlank = static_cast<std::size_t>(-1);

  [[nodiscard]] EntryList& idle_list_mut(ConfigId config);
  [[nodiscard]] EntryList& busy_list_mut(ConfigId config);
  /// Shared InitNodes/InitDeviceClasses tail: pre-sizes the per-config
  /// idle/busy lists for a population of `node_count` nodes.
  void ReserveEntryLists(int node_count);
  void RemoveFromBlank(NodeId node_id);
  void PushBlank(NodeId node_id);
  void RefreshIndex(NodeId node_id);
  /// True when scheduler queries should be answered by the shard engine:
  /// always in indexed mode (per-shard lookups are O(K log n)); in scan
  /// mode only when the pool is actually parallel — a one-thread broadcast
  /// would lose the reference scans' early exits for nothing.
  [[nodiscard]] bool ShardAnswers() const;

  ConfigCatalogue configs_;
  std::vector<Node> nodes_;
  std::vector<EntryList> idle_lists_;   // indexed by ConfigId::value()
  std::vector<EntryList> busy_lists_;   // indexed by ConfigId::value()
  std::vector<NodeId> blank_;           // nodes with zero configurations
  std::vector<std::size_t> blank_pos_;  // node id -> blank_ slot, kNotBlank
  std::vector<Area> busy_area_;         // node id -> sum of busy entry areas
  std::size_t failed_count_ = 0;        // nodes currently failed
  std::unique_ptr<StoreIndex> index_;   // null = scan mode
  std::unique_ptr<ShardEngine> shard_;  // null = sequential kernel
  Area min_config_area_ = 0;            // smallest catalogue area (slot hint)
  WorkloadMeter meter_;
};

}  // namespace dreamsim::resource
