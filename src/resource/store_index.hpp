// Indexed fast path for the ResourceStore scheduler queries.
//
// The paper's headline metric is *modeled* search effort: every query walks
// the Fig. 3 lists and charges one step per visited cell (Table I, Fig. 9).
// The reference implementation executes those walks literally, so a
// paper-scale sweep pays O(tasks x nodes) host work just to compute numbers
// that are derivable from aggregate state. This layer decouples the two:
// each query is answered from ordered indexes and segment/Fenwick trees in
// O(log N) amortized host work, while the caller charges the WorkloadMeter
// exactly the steps the reference scan would have charged (the
// modeled-effort contract; DESIGN.md "Scheduler index"). Decisions and step
// counts are bit-identical with the scans — tests/test_store_index_diff.cpp
// proves it differentially.
//
// Structure: one View per device family plus a global View (family-less
// queries). A node appears in exactly two views, so total memory stays
// O(N). Each View keys its members by ascending node id (`ids[pos]`), the
// position every tree/prefix structure is indexed by:
//   - potential:   max segment tree over TotalArea - sum(busy entry areas),
//                  the Algorithm 1 feasibility bound ("max reclaimable
//                  area") used to prune FindAnyIdleNode candidates;
//   - busy_total:  max segment tree over (busy ? TotalArea : -inf) making
//                  AnyBusyNodeCouldFit an O(log N) first-at-least descent;
//   - available:   max segment tree over AvailableArea (first-fit descent);
//   - config_count: Fenwick tree of live-entry counts, evaluating the
//                  analytic step formulas (prefix sums of slots a scan
//                  would have visited);
//   - ordered sets keyed by (area, node id): blank nodes by TotalArea,
//                  all/partially-blank nodes by AvailableArea, idle
//                  configured nodes by TotalArea.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resource/index_primitives.hpp"
#include "resource/store.hpp"

namespace dreamsim::resource {

/// The acceleration structures. Owned by ResourceStore; every mutation path
/// calls Refresh() on the touched node, every accelerated query reads pure
/// index state. The index never touches the WorkloadMeter — the store
/// charges the analytic step counts.
class StoreIndex {
 public:
  /// `sparse` relaxes the dense-id requirement: members may be any strictly
  /// ascending id subset of the store (the sharded kernel gives each shard
  /// an index over its members only). Dense mode is unchanged.
  explicit StoreIndex(const ConfigCatalogue& configs, bool sparse = false)
      : configs_(&configs), sparse_(sparse) {}

  /// Re-points the catalogue reference after the owning store moved.
  void RebindCatalogue(const ConfigCatalogue& configs) { configs_ = &configs; }

  /// Registers a node (ids must arrive in ascending order — dense from 0
  /// unless `sparse`) with the given busy area (sum of its busy entries'
  /// required areas).
  void AddNode(const Node& node, Area busy_area);

  [[nodiscard]] bool sparse() const { return sparse_; }

  /// Re-derives every indexed property of `node` and applies the delta.
  void Refresh(const Node& node, Area busy_area);

  // --- Query mirrors (decision only; the store charges the steps) ---

  /// FindBestBlankNode: minimum TotalArea among fitting blank nodes; ties
  /// resolved by blank-list position (`blank_pos`), matching the reference
  /// scan's first-in-list-order winner.
  [[nodiscard]] std::optional<NodeId> BestBlank(
      Area needed_area, FamilyId family,
      const std::vector<std::size_t>& blank_pos) const;

  /// FindBestPartiallyBlankNode: non-blank node with minimum AvailableArea
  /// >= needed (ties: minimum id); contiguous nodes must pass CanHost.
  [[nodiscard]] std::optional<NodeId> BestPartiallyBlank(
      Area needed_area, FamilyId family, const std::vector<Node>& nodes) const;

  /// FindBestIdleConfiguredNode: idle, non-blank node with minimum
  /// TotalArea >= needed (ties: minimum id).
  [[nodiscard]] std::optional<NodeId> BestIdleConfigured(Area needed_area,
                                                         FamilyId family) const;

  struct BusyFit {
    bool found = false;
    Steps steps = 0;  // what the early-exiting reference scan would charge
  };
  /// AnyBusyNodeCouldFit plus its analytic step charge.
  [[nodiscard]] BusyFit AnyBusyFit(Area needed_area, FamilyId family) const;

  struct AnyIdle {
    std::optional<ReconfigPlan> plan;
    Steps steps = 0;  // node visits + slot visits of the reference scan
  };
  /// FindAnyIdleNode (Algorithm 1): candidates come from the `potential`
  /// descent in id order; the per-candidate reclaim plan replays the
  /// paper's slot-order accumulation.
  [[nodiscard]] AnyIdle FindAnyIdle(Area needed_area, FamilyId family,
                                    const std::vector<Node>& nodes) const;

  /// Heuristic Class B host search (first/best/worst fit over all nodes).
  [[nodiscard]] std::optional<NodeId> RankedHost(
      Area needed_area, HostRank rank, FamilyId family,
      const std::vector<Node>& nodes) const;

  // --- Decision-only mirrors for the sharded kernel (no step charges;
  // the ShardEngine computes the analytic charges at merge time from
  // global aggregates) ---

  /// First member in id order that is busy with TotalArea >= needed.
  [[nodiscard]] std::optional<NodeId> AnyBusyFitNode(Area needed_area,
                                                     FamilyId family) const;

  /// FindAnyIdleNode winner among members (lowest-id candidate whose
  /// potential reaches the target and whose reclaim replay succeeds).
  [[nodiscard]] std::optional<ReconfigPlan> FindAnyIdleCandidate(
      Area needed_area, FamilyId family, const std::vector<Node>& nodes) const;

  /// Sum of live-slot counts over family-compatible members with id <
  /// `bound_id` (the slot charges an Algorithm 1 scan pays before reaching
  /// `bound_id`).
  [[nodiscard]] Steps LiveSlotPrefixBefore(FamilyId family,
                                           std::uint32_t bound_id) const;

  /// Sum of live-slot counts over all family-compatible members.
  [[nodiscard]] Steps LiveSlotTotal(FamilyId family) const;

  /// Cross-checks every indexed value against ground truth; returns one
  /// message per violation (empty = consistent).
  [[nodiscard]] std::vector<std::string> Validate(
      const std::vector<Node>& nodes,
      const std::vector<Area>& busy_area) const;

 private:
  // Correctness tooling (src/analysis): read-only ground-truth diffing and
  // test-only seeded corruption. See entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  /// (area, node id): ordered first by key area, then by id — lower_bound
  /// on {area, 0} lands on the tightest fit with the smallest id.
  using AreaKey = std::pair<Area, std::uint32_t>;

  struct View {
    std::vector<std::uint32_t> ids;  // ascending node ids in this view
    MaxSegTree potential;
    MaxSegTree busy_total;
    MaxSegTree available;
    PrefixSumTree config_count;
    std::set<AreaKey> blank_by_total;
    std::set<AreaKey> all_by_avail;
    std::set<AreaKey> partial_by_avail;
    std::set<AreaKey> idle_cfg_by_total;
  };

  /// Last-applied snapshot of one node's indexed properties.
  struct Snapshot {
    Area total = 0;
    Area available = 0;
    Area potential = 0;
    std::int64_t config_count = 0;
    bool blank = true;
    bool busy = false;
    bool failed = false;
    std::uint32_t family = 0;     // FamilyId::kInvalidValue when familyless
    std::size_t family_pos = 0;   // position within the family view
  };

  /// Position of member `id` in the global view / cached_ ("slot").
  /// Dense mode: id itself. Sparse mode: slot_of_ lookup.
  [[nodiscard]] std::size_t PosOf(std::uint32_t id) const {
    return sparse_ ? slot_of_.at(id) : id;
  }

  [[nodiscard]] static Snapshot Capture(const Node& node, Area busy_area);
  // Failed nodes are invisible to every query: their tree keys collapse to
  // -inf and they leave every ordered set, exactly as the reference scans
  // skip them (absent from the blank list, CanHost/busy() false, no slots).
  [[nodiscard]] static std::int64_t PotentialKey(const Snapshot& snap);
  [[nodiscard]] static std::int64_t AvailableKey(const Snapshot& snap);
  [[nodiscard]] const View* ViewFor(FamilyId family) const;
  static void AppendToView(View& view, const Snapshot& snap, std::uint32_t id);
  static void ApplyToView(View& view, std::size_t pos, const Snapshot& was,
                          const Snapshot& now, std::uint32_t id);
  [[nodiscard]] std::optional<ReconfigPlan> ReplayReclaimScan(
      const Node& node, Area needed_area) const;
  void ValidateView(const View& view, const char* label,
                    const std::vector<Node>& nodes,
                    const std::vector<Area>& busy_area,
                    std::vector<std::string>& violations) const;

  const ConfigCatalogue* configs_;
  bool sparse_ = false;
  View global_;
  std::unordered_map<std::uint32_t, View> family_views_;
  std::vector<Snapshot> cached_;  // indexed by PosOf (== node id when dense)
  std::unordered_map<std::uint32_t, std::size_t> slot_of_;  // sparse only
};

}  // namespace dreamsim::resource
