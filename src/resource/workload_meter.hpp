// Search-step accounting (Table I).
//
// "A search step is a basic unit of exploration to search a memory
// location." The meter distinguishes the scheduler's per-task search effort
// (the SL counter behind *average scheduling steps per task*, Fig. 9a) from
// housekeeping done by the resource information module (idle/busy list and
// suspension-queue maintenance). *Total scheduler workload* (Fig. 9b) is the
// sum of both.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace dreamsim::resource {

/// Kinds of counted step.
enum class StepKind : std::uint8_t {
  kSchedulingSearch,  // exploring candidates to place the current task
  kHousekeeping,      // list/queue maintenance by the resource info module
};

/// Accumulates search steps for the metrics system. One meter per
/// simulation; every counted traversal receives a reference to it.
class WorkloadMeter {
 public:
  /// Resets the per-task scheduling counter (call at the start of each
  /// scheduling attempt).
  void BeginTask() { current_task_steps_ = 0; }

  void Add(StepKind kind, Steps count = 1) {
    total_workload_ += count;
    if (kind == StepKind::kSchedulingSearch) {
      current_task_steps_ += count;
      scheduling_steps_ += count;
    } else {
      housekeeping_steps_ += count;
    }
  }

  /// Steps charged to the task currently being scheduled (SL).
  [[nodiscard]] Steps current_task_steps() const { return current_task_steps_; }

  /// All scheduling-search steps across the run.
  [[nodiscard]] Steps scheduling_steps_total() const {
    return scheduling_steps_;
  }

  /// All housekeeping steps across the run.
  [[nodiscard]] Steps housekeeping_steps_total() const {
    return housekeeping_steps_;
  }

  /// Total scheduler workload: scheduling + housekeeping (Fig. 9b).
  [[nodiscard]] Steps total_workload() const { return total_workload_; }

  void Reset() {
    current_task_steps_ = 0;
    scheduling_steps_ = 0;
    housekeeping_steps_ = 0;
    total_workload_ = 0;
  }

 private:
  Steps current_task_steps_ = 0;
  Steps scheduling_steps_ = 0;
  Steps housekeeping_steps_ = 0;
  Steps total_workload_ = 0;
};

}  // namespace dreamsim::resource
