#include "resource/sus_queue_index.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim::resource {

namespace {

constexpr Area kAreaMax = std::numeric_limits<Area>::max();

/// Deterministic heap priority for treap nodes (splitmix64 finalizer) —
/// the structure must not depend on run-to-run randomness.
std::uint64_t HeapPriority(std::uint64_t seq) {
  std::uint64_t z = seq + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Lexicographic (neg_priority, seq) "less than".
bool KeyLess(double np_a, std::uint64_t seq_a, double np_b,
             std::uint64_t seq_b) {
  if (np_a != np_b) return np_a < np_b;
  return seq_a < seq_b;
}

}  // namespace

// --- AreaTreap ---

Area AreaTreap::MinArea(std::int32_t n) const {
  return n == kNull ? kAreaMax : nodes_[static_cast<std::size_t>(n)].min_area;
}

void AreaTreap::Pull(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.min_area =
      std::min({node.area, MinArea(node.left), MinArea(node.right)});
}

void AreaTreap::Split(std::int32_t n, double np, std::uint64_t seq,
                      std::int32_t& lo, std::int32_t& hi) {
  if (n == kNull) {
    lo = hi = kNull;
    return;
  }
  Node& node = nodes_[static_cast<std::size_t>(n)];
  if (KeyLess(node.neg_priority, node.seq, np, seq)) {
    lo = n;
    Split(node.right, np, seq, node.right, hi);
  } else {
    hi = n;
    Split(node.left, np, seq, lo, node.left);
  }
  Pull(n);
}

std::int32_t AreaTreap::Merge(std::int32_t lo, std::int32_t hi) {
  if (lo == kNull) return hi;
  if (hi == kNull) return lo;
  Node& a = nodes_[static_cast<std::size_t>(lo)];
  Node& b = nodes_[static_cast<std::size_t>(hi)];
  if (a.heap >= b.heap) {
    a.right = Merge(a.right, hi);
    Pull(lo);
    return lo;
  }
  b.left = Merge(lo, b.left);
  Pull(hi);
  return hi;
}

void AreaTreap::Insert(double neg_priority, std::uint64_t seq, Area area) {
  std::int32_t fresh;
  if (!free_.empty()) {
    fresh = free_.back();
    free_.pop_back();
  } else {
    fresh = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[static_cast<std::size_t>(fresh)];
  node = Node{neg_priority, seq,  area, area, HeapPriority(seq),
              kNull,        kNull};
  std::int32_t lo = kNull;
  std::int32_t hi = kNull;
  Split(root_, neg_priority, seq, lo, hi);
  root_ = Merge(Merge(lo, fresh), hi);
  ++count_;
}

void AreaTreap::Erase(double neg_priority, std::uint64_t seq) {
  // Split out the half-open key range [(np, seq), (np, seq + 1)) — seqs
  // are unique, so it holds exactly the node to delete. Split/Merge
  // re-pull min_area along every touched path.
  std::int32_t lo = kNull;
  std::int32_t mid = kNull;
  std::int32_t hi = kNull;
  Split(root_, neg_priority, seq, lo, mid);
  Split(mid, neg_priority, seq + 1, mid, hi);
  if (mid == kNull) throw std::logic_error("AreaTreap::Erase: key not found");
  const Node& node = nodes_[static_cast<std::size_t>(mid)];
  if (node.left != kNull || node.right != kNull || node.seq != seq) {
    throw std::logic_error("AreaTreap::Erase: key range not a single node");
  }
  free_.push_back(mid);
  --count_;
  root_ = Merge(lo, hi);
}

std::optional<std::pair<double, std::uint64_t>> AreaTreap::FirstWithAreaAtMost(
    Area bound) const {
  std::int32_t cur = root_;
  if (cur == kNull || MinArea(cur) > bound) return std::nullopt;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.left != kNull && MinArea(node.left) <= bound) {
      cur = node.left;
      continue;
    }
    if (node.area <= bound) return std::make_pair(node.neg_priority, node.seq);
    cur = node.right;  // invariant: some qualifying node exists below
  }
}

// --- SusQueueIndex ---

void SusQueueIndex::Add(TaskId task, const SusEntryAttrs& attrs) {
  auto [it, inserted] = slots_.emplace(task.value(), Slot{next_seq_, attrs});
  if (!inserted) {
    throw std::logic_error("SusQueueIndex::Add: task already queued");
  }
  ++next_seq_;
  live_.Append(1);
  InsertInto(it->second.seq, attrs);
}

void SusQueueIndex::Remove(TaskId task) {
  const auto it = slots_.find(task.value());
  if (it == slots_.end()) {
    throw std::logic_error("SusQueueIndex::Remove: task not queued");
  }
  live_.Assign(it->second.seq, 0);
  EraseFrom(it->second.seq, it->second.attrs);
  slots_.erase(it);
}

void SusQueueIndex::Refresh(TaskId task, const SusEntryAttrs& attrs) {
  const auto it = slots_.find(task.value());
  if (it == slots_.end()) {
    throw std::logic_error("SusQueueIndex::Refresh: task not queued");
  }
  if (it->second.attrs == attrs) return;
  EraseFrom(it->second.seq, it->second.attrs);
  it->second.attrs = attrs;
  InsertInto(it->second.seq, attrs);
}

std::size_t SusQueueIndex::PositionOf(TaskId task) const {
  return PositionOfSeq(slots_.at(task.value()).seq);
}

std::size_t SusQueueIndex::PositionOfSeq(std::uint64_t seq) const {
  return static_cast<std::size_t>(live_.Prefix(static_cast<std::size_t>(seq)));
}

void SusQueueIndex::AssignSeqLeaf(Group& group, std::uint64_t seq,
                                  std::int64_t value) {
  while (group.by_seq.size() <= seq) group.by_seq.Append(MaxSegTree::kNegInf);
  group.by_seq.Assign(static_cast<std::size_t>(seq), value);
}

void SusQueueIndex::InsertInto(std::uint64_t seq, const SusEntryAttrs& attrs) {
  Bucket& bucket = buckets_[attrs.resolved_config.value()];
  bucket.by_seq.insert(seq);
  bucket.by_priority.emplace(-attrs.priority, seq);
  Group& group = groups_[GroupKeyOf(attrs)];
  AssignSeqLeaf(group, seq, -attrs.needed_area);
  group.by_priority.Insert(-attrs.priority, seq, attrs.needed_area);
}

void SusQueueIndex::EraseFrom(std::uint64_t seq, const SusEntryAttrs& attrs) {
  Bucket& bucket = buckets_.at(attrs.resolved_config.value());
  bucket.by_seq.erase(seq);
  bucket.by_priority.erase({-attrs.priority, seq});
  Group& group = groups_.at(GroupKeyOf(attrs));
  AssignSeqLeaf(group, seq, MaxSegTree::kNegInf);
  group.by_priority.Erase(-attrs.priority, seq);
}

std::vector<const SusQueueIndex::Group*> SusQueueIndex::GroupsFor(
    FamilyId family) const {
  // A task is family-compatible when its config family is invalid (the
  // wildcard group) or equals the node's family — Configuration::
  // CompatibleWith. A family-less node only matches the wildcard group.
  std::vector<const Group*> out;
  if (const auto it = groups_.find(kWildcardGroup); it != groups_.end()) {
    out.push_back(&it->second);
  }
  if (family.valid()) {
    if (const auto it = groups_.find(family.value()); it != groups_.end()) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::optional<std::size_t> SusQueueIndex::OldestExactMatch(
    ConfigId config) const {
  const auto it = buckets_.find(config.value());
  if (it == buckets_.end() || it->second.by_seq.empty()) return std::nullopt;
  return PositionOfSeq(*it->second.by_seq.begin());
}

std::optional<std::size_t> SusQueueIndex::BestPriorityExactMatch(
    ConfigId config) const {
  const auto it = buckets_.find(config.value());
  if (it == buckets_.end() || it->second.by_priority.empty()) {
    return std::nullopt;
  }
  return PositionOfSeq(it->second.by_priority.begin()->second);
}

std::optional<std::size_t> SusQueueIndex::OldestEligible(
    FamilyId family, Area area_bound, TaskId from_task,
    ConfigId match_config) const {
  std::uint64_t from_seq = 0;
  if (from_task.valid()) from_seq = slots_.at(from_task.value()).seq;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  bool found = false;
  if (match_config.valid()) {
    if (const auto it = buckets_.find(match_config.value());
        it != buckets_.end()) {
      const auto seq_it = it->second.by_seq.lower_bound(from_seq);
      if (seq_it != it->second.by_seq.end()) {
        best_seq = *seq_it;
        found = true;
      }
    }
  }
  for (const Group* group : GroupsFor(family)) {
    const std::size_t pos = group->by_seq.FirstAtLeast(
        static_cast<std::size_t>(from_seq), -area_bound);
    if (pos != MaxSegTree::npos && static_cast<std::uint64_t>(pos) < best_seq) {
      best_seq = static_cast<std::uint64_t>(pos);
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return PositionOfSeq(best_seq);
}

std::optional<std::size_t> SusQueueIndex::BestPriorityEligible(
    FamilyId family, Area area_bound, ConfigId match_config) const {
  std::optional<std::pair<double, std::uint64_t>> best;
  const auto consider = [&best](std::pair<double, std::uint64_t> key) {
    if (!best || key < *best) best = key;
  };
  if (match_config.valid()) {
    if (const auto it = buckets_.find(match_config.value());
        it != buckets_.end() && !it->second.by_priority.empty()) {
      consider(*it->second.by_priority.begin());
    }
  }
  for (const Group* group : GroupsFor(family)) {
    if (const auto key = group->by_priority.FirstWithAreaAtMost(area_bound)) {
      consider(*key);
    }
  }
  if (!best) return std::nullopt;
  return PositionOfSeq(best->second);
}

std::vector<std::string> SusQueueIndex::Validate(
    const std::vector<TaskId>& queue,
    const std::function<SusEntryAttrs(TaskId)>& attrs_of) const {
  std::vector<std::string> violations;
  const auto complain = [&violations](std::string msg) {
    violations.push_back(std::move(msg));
  };
  if (queue.size() != slots_.size()) {
    complain(Format("size mismatch: queue {} vs index {}", queue.size(),
                     slots_.size()));
  }
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (std::size_t pos = 0; pos < queue.size(); ++pos) {
    const TaskId task = queue[pos];
    const auto it = slots_.find(task.value());
    if (it == slots_.end()) {
      complain(Format("task {} queued but not indexed", task.value()));
      continue;
    }
    const Slot& slot = it->second;
    if (!first && slot.seq <= prev_seq) {
      complain(Format("task {} breaks seq monotonicity", task.value()));
    }
    first = false;
    prev_seq = slot.seq;
    const SusEntryAttrs truth = attrs_of(task);
    if (!(slot.attrs == truth)) {
      complain(Format("task {} has stale attrs", task.value()));
    }
    if (PositionOfSeq(slot.seq) != pos) {
      complain(Format("task {} position {} != rank {}", task.value(), pos,
                       PositionOfSeq(slot.seq)));
    }
    const auto bucket_it = buckets_.find(slot.attrs.resolved_config.value());
    if (bucket_it == buckets_.end() ||
        !bucket_it->second.by_seq.contains(slot.seq) ||
        !bucket_it->second.by_priority.contains(
            {-slot.attrs.priority, slot.seq})) {
      complain(Format("task {} missing from its bucket", task.value()));
    }
    const auto group_it = groups_.find(GroupKeyOf(slot.attrs));
    if (group_it == groups_.end() ||
        group_it->second.by_seq.size() <= slot.seq ||
        group_it->second.by_seq.Value(static_cast<std::size_t>(slot.seq)) !=
            -slot.attrs.needed_area) {
      complain(Format("task {} missing from its group", task.value()));
    }
  }
  std::size_t bucket_total = 0;
  for (const auto& [config, bucket] : buckets_) {
    if (bucket.by_seq.size() != bucket.by_priority.size()) {
      complain(Format("bucket {} set sizes differ", config));
    }
    bucket_total += bucket.by_seq.size();
  }
  if (bucket_total != slots_.size()) {
    complain(Format("buckets hold {} entries, expected {}", bucket_total,
                     slots_.size()));
  }
  std::size_t group_total = 0;
  for (const auto& [family, group] : groups_) {
    group_total += group.by_priority.size();
    std::size_t live_leaves = 0;
    for (std::size_t pos = 0; pos < group.by_seq.size(); ++pos) {
      if (group.by_seq.Value(pos) != MaxSegTree::kNegInf) ++live_leaves;
    }
    if (live_leaves != group.by_priority.size()) {
      complain(Format("group {} tree/treap sizes differ ({} vs {})", family,
                       live_leaves, group.by_priority.size()));
    }
  }
  if (group_total != slots_.size()) {
    complain(Format("groups hold {} entries, expected {}", group_total,
                     slots_.size()));
  }
  if (static_cast<std::size_t>(live_.Total()) != slots_.size()) {
    complain("live-count Fenwick total mismatch");
  }
  return violations;
}

}  // namespace dreamsim::resource
