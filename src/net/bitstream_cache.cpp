#include "net/bitstream_cache.hpp"

namespace dreamsim::net {

BitstreamCache::BitstreamCache(Bytes capacity) : capacity_(capacity) {}

bool BitstreamCache::Lookup(ConfigId config) {
  const auto it = map_.find(config);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return true;
}

void BitstreamCache::Insert(ConfigId config, Bytes size) {
  if (capacity_ <= 0 || size > capacity_) return;
  const auto it = map_.find(config);
  if (it != map_.end()) {
    used_ -= it->second->size;
    it->second->size = size;
    used_ += size;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (used_ + size > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.config);
    lru_.pop_back();
  }
  lru_.push_front(Entry{config, size});
  map_.emplace(config, lru_.begin());
  used_ += size;
}

void BitstreamCache::Clear() {
  lru_.clear();
  map_.clear();
  used_ = 0;
}

}  // namespace dreamsim::net
