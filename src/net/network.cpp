#include "net/network.hpp"

namespace dreamsim::net {

NetworkModel::NetworkModel(NetworkParams params, std::uint64_t jitter_seed)
    : params_(params), jitter_rng_(jitter_seed) {}

Tick NetworkModel::Jitter() {
  if (params_.max_jitter <= 0) return 0;
  return jitter_rng_.uniform_int(0, params_.max_jitter);
}

Tick NetworkModel::TransferTime(const resource::Node& node, Bytes payload) {
  bytes_transferred_ += payload;
  Tick serialization = 0;
  if (params_.bytes_per_tick > 0 && payload > 0) {
    serialization =
        (payload + params_.bytes_per_tick - 1) / params_.bytes_per_tick;
  }
  return params_.base_latency + node.network_delay() + serialization +
         Jitter();
}

Tick NetworkModel::BitstreamTime(const resource::Node& node,
                                 Bytes bitstream_size) {
  bytes_transferred_ += bitstream_size;
  const Bytes bandwidth = params_.bytes_per_tick > 0
                              ? params_.bytes_per_tick
                              : node.caps().config_bandwidth;
  Tick serialization = 0;
  if (bandwidth > 0 && bitstream_size > 0) {
    serialization = (bitstream_size + bandwidth - 1) / bandwidth;
  }
  return params_.base_latency + node.network_delay() + serialization +
         Jitter();
}

}  // namespace dreamsim::net
