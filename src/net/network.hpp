// Network substrate for the t_comm term of Eq. 8 and for bitstream
// distribution.
//
// Figure 1's system is a star around the Resource Management System: the RMS
// ships task input data and configuration bitstreams to nodes over wired/
// wireless/WAN links. The model is deliberately simple — per-node fixed
// latency plus size/bandwidth serialization, with optional uniform jitter —
// because the paper treats communication as a per-task additive delay.
#pragma once

#include <cstdint>

#include "resource/node.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::net {

/// Link parameters between the RMS and the node population.
struct NetworkParams {
  /// Payload bandwidth in bytes per tick; 0 disables serialization delay.
  Bytes bytes_per_tick = 0;
  /// Extra fixed latency added to every transfer (on top of each node's
  /// own network_delay).
  Tick base_latency = 0;
  /// Maximum uniform jitter in ticks added per transfer (0 = none).
  Tick max_jitter = 0;
};

/// Computes task/bitstream transfer times. Stateless except for the jitter
/// stream; one instance per simulation keeps runs deterministic.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params, std::uint64_t jitter_seed = 1);

  /// Ticks to move `payload` bytes from the RMS to `node` (the t_comm of
  /// Eq. 8 for a task whose input data is `payload` bytes).
  [[nodiscard]] Tick TransferTime(const resource::Node& node, Bytes payload);

  /// Ticks to ship a configuration bitstream to `node`. Uses the node's
  /// configuration-port bandwidth when the payload bandwidth is disabled.
  [[nodiscard]] Tick BitstreamTime(const resource::Node& node,
                                   Bytes bitstream_size);

  [[nodiscard]] const NetworkParams& params() const { return params_; }

  /// Total bytes accounted across all transfers (diagnostics).
  [[nodiscard]] Bytes bytes_transferred() const { return bytes_transferred_; }

 private:
  [[nodiscard]] Tick Jitter();

  NetworkParams params_;
  Rng jitter_rng_;
  Bytes bytes_transferred_ = 0;
};

}  // namespace dreamsim::net
