// Per-node bitstream cache (extension).
//
// In Fig. 1 the RMS configures nodes by "sending a bitstream of a different
// configuration" over the network. Nodes commonly keep recently used
// partial bitstreams in local flash/DRAM, so reconfiguring back to a recent
// configuration skips the transfer. This LRU cache models that: capacity
// in bytes, hit => no bitstream shipping delay, miss => full transfer and
// insertion. Disabled (capacity 0) the simulator reproduces the paper's
// always-ship behaviour.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/types.hpp"

namespace dreamsim::net {

/// Byte-capacity LRU cache of configuration bitstreams for one node.
class BitstreamCache {
 public:
  /// `capacity` in bytes; 0 disables the cache (every lookup misses,
  /// nothing is stored).
  explicit BitstreamCache(Bytes capacity = 0);

  /// True (and refreshes recency) when `config`'s bitstream is resident.
  bool Lookup(ConfigId config);

  /// Inserts a bitstream of `size` bytes, evicting least-recently-used
  /// entries until it fits. Oversized bitstreams (> capacity) bypass the
  /// cache entirely. Re-inserting refreshes recency and size.
  void Insert(ConfigId config, Bytes size);

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] std::size_t entries() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void Clear();

 private:
  struct Entry {
    ConfigId config;
    Bytes size;
  };

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ConfigId, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dreamsim::net
