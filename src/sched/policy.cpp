#include "sched/policy.hpp"

namespace dreamsim::sched {

std::string_view ToString(ReconfigMode mode) {
  switch (mode) {
    case ReconfigMode::kFull: return "full";
    case ReconfigMode::kPartial: return "partial";
  }
  return "?";
}

std::string_view ToString(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kAllocation: return "allocation";
    case PlacementKind::kConfiguration: return "configuration";
    case PlacementKind::kPartialConfiguration: return "partial-configuration";
    case PlacementKind::kPartialReconfiguration:
      return "partial-reconfiguration";
    case PlacementKind::kFullReconfiguration: return "full-reconfiguration";
  }
  return "?";
}

std::optional<ResolvedConfig> ResolveConfig(const resource::Task& task,
                                            resource::ResourceStore& store) {
  resource::WorkloadMeter& meter = store.meter();
  Steps steps = 0;
  const auto& catalogue = store.configs();

  // "Initially, the scheduler decides whether the exact-match configuration
  // (or C_pref) of the task is available in the configurations list."
  if (task.preferred_config.valid()) {
    const auto exact = catalogue.FindPreferred(task.preferred_config, steps);
    meter.Add(resource::StepKind::kSchedulingSearch, steps);
    if (exact) return ResolvedConfig{*exact, false};
  } else {
    // Unknown C_pref still costs a full (failed) catalogue scan.
    meter.Add(resource::StepKind::kSchedulingSearch, catalogue.size());
  }

  // "If the C_pref of the task is not available, then the algorithm
  // searches for a closest-match configuration."
  steps = 0;
  const auto closest = catalogue.FindClosestMatch(task.needed_area, steps);
  meter.Add(resource::StepKind::kSchedulingSearch, steps);
  if (closest) return ResolvedConfig{*closest, true};
  return std::nullopt;  // "if CClosestMatch is also not available, discard"
}

}  // namespace dreamsim::sched
