// The paper's case-study scheduling algorithm (Sec. V, Fig. 5).
//
// Four phases, tried in order for the resolved configuration (C_pref or
// C_ClosestMatch):
//
//   1. Allocation               — best idle entry already configured with it
//                                 (minimum AvailableArea node).
//   2. Configuration            — best blank node, freshly configured.
//   3. Partial configuration    — (partial mode) tightest operative node
//                                 with enough spare area.
//   4. Partial re-configuration — (partial mode) Algorithm 1: reclaim idle
//                                 entries until the region fits.
//      Full re-configuration    — (full mode) wipe the tightest idle
//                                 configured node and reconfigure it.
//
// If all phases fail: suspend when some busy node could eventually host the
// configuration ("query busy list for potential candidate"), else discard.
#pragma once

#include "sched/policy.hpp"

namespace dreamsim::sched {

class DreamSimPolicy final : public Policy {
 public:
  explicit DreamSimPolicy(ReconfigMode mode) : mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return mode_ == ReconfigMode::kPartial ? "dreamsim-partial"
                                           : "dreamsim-full";
  }

  [[nodiscard]] ReconfigMode mode() const { return mode_; }

  [[nodiscard]] Decision Schedule(const resource::Task& task,
                                  resource::ResourceStore& store) override;

 private:
  [[nodiscard]] Decision SchedulePartial(const resource::Task& task,
                                         resource::ResourceStore& store,
                                         const ResolvedConfig& resolved);
  [[nodiscard]] Decision ScheduleFull(const resource::Task& task,
                                      resource::ResourceStore& store,
                                      const ResolvedConfig& resolved);

  ReconfigMode mode_;
};

}  // namespace dreamsim::sched
