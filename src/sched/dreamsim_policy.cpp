#include "sched/dreamsim_policy.hpp"

#include <optional>

#include "obs/profiler.hpp"

namespace dreamsim::sched {
namespace {

using resource::EntryRef;
using resource::ResourceStore;

Decision Placed(EntryRef entry, ConfigId config, Tick config_time,
                PlacementKind kind, bool closest) {
  Decision d;
  d.outcome = Outcome::kPlaced;
  d.entry = entry;
  d.config = config;
  d.config_time = config_time;
  d.kind = kind;
  d.used_closest_match = closest;
  return d;
}

Decision SuspendOrDiscard(const resource::Configuration& cfg,
                          ResourceStore& store, bool closest) {
  Decision d;
  d.config = cfg.id;
  d.used_closest_match = closest;
  // "it explores the list of all busy nodes to search at least one
  // currently busy node with sufficient TotalArea ... If one such node is
  // found, the task is put in a suspension queue."
  d.outcome = store.AnyBusyNodeCouldFit(cfg.required_area, cfg.family)
                  ? Outcome::kSuspend
                  : Outcome::kDiscard;
  return d;
}

}  // namespace

Decision DreamSimPolicy::Schedule(const resource::Task& task,
                                  resource::ResourceStore& store) {
  const auto resolved = ResolveConfig(task, store);
  if (!resolved) {
    // Neither C_pref nor any closest match exists: discard immediately.
    Decision d;
    d.outcome = Outcome::kDiscard;
    d.used_closest_match = !task.preferred_config.valid();
    return d;
  }
  return mode_ == ReconfigMode::kPartial
             ? SchedulePartial(task, store, *resolved)
             : ScheduleFull(task, store, *resolved);
}

Decision DreamSimPolicy::SchedulePartial(const resource::Task& task,
                                         resource::ResourceStore& store,
                                         const ResolvedConfig& resolved) {
  const resource::Configuration& cfg = store.configs().Get(resolved.config);

  // Phase 1 — Allocation: "the task is directly allocated to one of the
  // idle nodes already configured with the C_pref ... best-match is the
  // node which possesses the minimum AvailableArea".
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kAllocation);
    if (const auto entry = store.FindBestIdleEntry(cfg.id)) {
      store.AssignTask(*entry, task.id);
      return Placed(*entry, cfg.id, 0, PlacementKind::kAllocation,
                    resolved.used_closest_match);
    }
  }

  // Phases 2+ query on the same (area, family) key against unmutated state;
  // the sharded kernel answers them all from one batched fork-join.
  store.PrefetchDecision(cfg.required_area, cfg.family);

  // Phase 2 — Configuration: "one of the blank nodes is configured".
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kConfiguration);
    if (const auto node_id =
            store.FindBestBlankNode(cfg.required_area, cfg.family)) {
      const EntryRef entry = store.Configure(*node_id, cfg.id);
      store.AssignTask(entry, task.id);
      return Placed(entry, cfg.id, cfg.config_time,
                    PlacementKind::kConfiguration,
                    resolved.used_closest_match);
    }
  }

  // Phase 3 — Partial configuration: "a node which contains a
  // reconfigurable region with sufficient area ... chooses a node with
  // minimum sufficient region".
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kPartialConfiguration);
    if (const auto node_id =
            store.FindBestPartiallyBlankNode(cfg.required_area, cfg.family)) {
      const EntryRef entry = store.Configure(*node_id, cfg.id);
      store.AssignTask(entry, task.id);
      return Placed(entry, cfg.id, cfg.config_time,
                    PlacementKind::kPartialConfiguration,
                    resolved.used_closest_match);
    }
  }

  // Phase 4 — Partial re-configuration (Algorithm 1): reclaim idle entries
  // on some node until the new region fits, then configure it.
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kPartialReconfiguration);
    if (const auto plan = store.FindAnyIdleNode(cfg.required_area, cfg.family)) {
      for (const resource::SlotIndex slot : plan->removable_entries) {
        store.ReclaimSlot(EntryRef{plan->node, slot});
      }
      const EntryRef entry = store.Configure(plan->node, cfg.id);
      store.AssignTask(entry, task.id);
      return Placed(entry, cfg.id, cfg.config_time,
                    PlacementKind::kPartialReconfiguration,
                    resolved.used_closest_match);
    }
  }

  return SuspendOrDiscard(cfg, store,
                          resolved.used_closest_match);
}

Decision DreamSimPolicy::ScheduleFull(const resource::Task& task,
                                      resource::ResourceStore& store,
                                      const ResolvedConfig& resolved) {
  const resource::Configuration& cfg = store.configs().Get(resolved.config);

  // Phase 1 — Allocation to an idle node already holding the configuration
  // (in full mode a node has at most one configuration).
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kAllocation);
    if (const auto entry = store.FindBestIdleEntry(cfg.id)) {
      store.AssignTask(*entry, task.id);
      return Placed(*entry, cfg.id, 0, PlacementKind::kAllocation,
                    resolved.used_closest_match);
    }
  }

  // Phases 2+ query on the same (area, family) key against unmutated state;
  // the sharded kernel answers them all from one batched fork-join.
  store.PrefetchDecision(cfg.required_area, cfg.family);

  // Phase 2 — Configuration of a blank node.
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kConfiguration);
    if (const auto node_id =
            store.FindBestBlankNode(cfg.required_area, cfg.family)) {
      const EntryRef entry = store.Configure(*node_id, cfg.id);
      store.AssignTask(entry, task.id);
      return Placed(entry, cfg.id, cfg.config_time,
                    PlacementKind::kConfiguration,
                    resolved.used_closest_match);
    }
  }

  // Phase 3 — Full re-configuration: wipe the tightest idle, non-blank node
  // whose whole fabric fits the configuration, then configure it for this
  // task.
  {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kFullReconfiguration);
    if (const auto node_id =
            store.FindBestIdleConfiguredNode(cfg.required_area, cfg.family)) {
      store.BlankNode(*node_id);
      const EntryRef entry = store.Configure(*node_id, cfg.id);
      store.AssignTask(entry, task.id);
      return Placed(entry, cfg.id, cfg.config_time,
                    PlacementKind::kFullReconfiguration,
                    resolved.used_closest_match);
    }
  }

  return SuspendOrDiscard(cfg, store,
                          resolved.used_closest_match);
}

}  // namespace dreamsim::sched
