// Baseline scheduling policies.
//
// The paper positions DReAMSim as a framework "to test different scheduling
// policies"; these baselines make that claim concrete and feed the policy
// ablation bench. All operate with partial reconfiguration semantics and
// share one candidate scan; they differ only in how they pick among feasible
// placements:
//
//   kFirstFit    — first feasible node in node-list order
//   kBestFit     — minimum leftover area (the paper's own tie-break)
//   kWorstFit    — maximum leftover area (spreads load over big nodes)
//   kRandomFit   — uniformly random feasible node
//   kRoundRobin  — rotating cursor over the node list
//   kLeastLoaded — fewest running tasks (load-balancing extension; ties
//                  broken by leftover area)
#pragma once

#include <cstdint>

#include "sched/policy.hpp"
#include "util/rng.hpp"

namespace dreamsim::sched {

enum class Heuristic : std::uint8_t {
  kFirstFit,
  kBestFit,
  kWorstFit,
  kRandomFit,
  kRoundRobin,
  kLeastLoaded,
};

[[nodiscard]] std::string_view ToString(Heuristic heuristic);

/// Candidate-scan policy parameterized by a selection heuristic.
///
/// Feasibility classes are tried in cost order, mirroring Fig. 5: reuse an
/// idle entry (no configuration), configure spare area (blank or operative
/// node), then reclaim idle entries (Algorithm 1). The heuristic picks
/// within the first non-empty class.
class HeuristicPolicy final : public Policy {
 public:
  /// `seed` feeds the kRandomFit stream (ignored by other heuristics).
  explicit HeuristicPolicy(Heuristic heuristic, std::uint64_t seed = 7);

  [[nodiscard]] std::string_view name() const override {
    return ToString(heuristic_);
  }

  [[nodiscard]] Decision Schedule(const resource::Task& task,
                                  resource::ResourceStore& store) override;

 private:
  /// Ranks node `n` under the active heuristic; smaller wins.
  [[nodiscard]] std::int64_t Rank(const resource::Node& n,
                                  std::size_t scan_position);

  Heuristic heuristic_;
  Rng rng_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace dreamsim::sched
