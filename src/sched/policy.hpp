// Scheduling-policy interface (the task scheduling manager of Sec. III "can
// implement different scheduling policies").
//
// A policy is invoked once per scheduling attempt. It searches the
// ResourceStore (counted traversals), performs any (re)configuration it
// decides on, assigns the task to an entry on success, and reports what it
// did so the simulator can derive timing (configuration delay) and metrics
// (closest-match usage, reconfiguration kind).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "resource/store.hpp"
#include "resource/task.hpp"
#include "util/types.hpp"

namespace dreamsim::sched {

/// Whether nodes support multiple simultaneous configurations. The paper's
/// evaluation compares exactly these two scenarios.
enum class ReconfigMode : std::uint8_t {
  kFull,     // "without partial configuration": one node - one task
  kPartial,  // "with partial configuration": one node - many tasks
};

[[nodiscard]] std::string_view ToString(ReconfigMode mode);

/// Which phase of the Fig. 5 flow placed the task (diagnostics/ablation).
enum class PlacementKind : std::uint8_t {
  kAllocation,            // idle entry with the wanted configuration
  kConfiguration,         // blank node newly configured
  kPartialConfiguration,  // spare area on an operative node configured
  kPartialReconfiguration,// idle entries reclaimed, region reconfigured
  kFullReconfiguration,   // whole node wiped and reconfigured (full mode)
};

[[nodiscard]] std::string_view ToString(PlacementKind kind);

/// What the policy decided for one attempt.
enum class Outcome : std::uint8_t {
  kPlaced,
  kSuspend,  // park in the suspension queue (busy candidate exists)
  kDiscard,  // infeasible now and later
};

struct Decision {
  Outcome outcome = Outcome::kDiscard;
  /// Filled when outcome == kPlaced.
  resource::EntryRef entry{};
  /// The resolved configuration (C_pref or closest match). Set whenever
  /// resolution succeeded — including on kSuspend — so the caller can cache
  /// it; invalid only when the task was discarded for lack of any match.
  ConfigId config;
  /// Ticks of configuration delay incurred before execution starts
  /// (0 when the task reused an already-loaded configuration).
  Tick config_time = 0;
  PlacementKind kind = PlacementKind::kAllocation;
  /// True when C_pref was absent and the closest match was used.
  bool used_closest_match = false;
};

/// Abstract policy. Implementations mutate the store on success: after a
/// kPlaced decision the chosen entry is busy with `task.id`.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// One scheduling attempt for `task`. Must call
  /// store.meter().BeginTask() exactly never — the caller resets the
  /// per-task counter so that retries from the suspension queue accumulate
  /// into the same task's step count.
  [[nodiscard]] virtual Decision Schedule(const resource::Task& task,
                                          resource::ResourceStore& store) = 0;
};

/// Resolves the configuration a task should use: the preferred one when the
/// catalogue has it, otherwise the closest match by area (counted searches).
/// Returns nullopt when no configuration can serve the task (=> discard).
struct ResolvedConfig {
  ConfigId config;
  bool used_closest_match = false;
};
[[nodiscard]] std::optional<ResolvedConfig> ResolveConfig(
    const resource::Task& task, resource::ResourceStore& store);

}  // namespace dreamsim::sched
