#include "sched/heuristic_policy.hpp"

#include <limits>
#include <optional>

namespace dreamsim::sched {
namespace {

using resource::EntryRef;
using resource::Node;
using dreamsim::NodeId;
using resource::ResourceStore;
using resource::StepKind;

}  // namespace

std::string_view ToString(Heuristic heuristic) {
  switch (heuristic) {
    case Heuristic::kFirstFit: return "first-fit";
    case Heuristic::kBestFit: return "best-fit";
    case Heuristic::kWorstFit: return "worst-fit";
    case Heuristic::kRandomFit: return "random-fit";
    case Heuristic::kRoundRobin: return "round-robin";
    case Heuristic::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

HeuristicPolicy::HeuristicPolicy(Heuristic heuristic, std::uint64_t seed)
    : heuristic_(heuristic), rng_(seed) {}

std::int64_t HeuristicPolicy::Rank(const resource::Node& n,
                                   std::size_t scan_position) {
  switch (heuristic_) {
    case Heuristic::kFirstFit:
      return static_cast<std::int64_t>(scan_position);
    case Heuristic::kBestFit:
      return n.available_area();
    case Heuristic::kWorstFit:
      return -n.available_area();
    case Heuristic::kRandomFit:
      return rng_.uniform_int(0, std::numeric_limits<std::int32_t>::max());
    case Heuristic::kRoundRobin: {
      // Distance ahead of the rotating cursor, by node id.
      const std::size_t id = n.id().value();
      return static_cast<std::int64_t>(
          id >= rr_cursor_ ? id - rr_cursor_ : id + (1u << 20) - rr_cursor_);
    }
    case Heuristic::kLeastLoaded:
      // Primary key: running tasks; secondary: leftover area.
      return static_cast<std::int64_t>(n.running_tasks()) * (1LL << 32) +
             n.available_area();
  }
  return 0;
}

Decision HeuristicPolicy::Schedule(const resource::Task& task,
                                   resource::ResourceStore& store) {
  const auto resolved = ResolveConfig(task, store);
  if (!resolved) {
    Decision d;
    d.outcome = Outcome::kDiscard;
    d.used_closest_match = !task.preferred_config.valid();
    return d;
  }
  const resource::Configuration& cfg = store.configs().Get(resolved->config);

  const auto finish = [&](EntryRef entry, Tick config_time,
                          PlacementKind kind) {
    store.AssignTask(entry, task.id);
    rr_cursor_ = (entry.node.value() + 1) % std::max<std::size_t>(
                                                1, store.node_count());
    Decision d;
    d.outcome = Outcome::kPlaced;
    d.entry = entry;
    d.config = cfg.id;
    d.config_time = config_time;
    d.kind = kind;
    d.used_closest_match = resolved->used_closest_match;
    return d;
  };

  // Class A: reuse an idle entry already configured with cfg. The rank can
  // depend on the scan position (first-fit) or mutate policy state
  // (random-fit), so the scan runs through the positional FindMin — one
  // counted step and one Rank call per cell, ties to the earliest.
  {
    const auto best = store.idle_list(cfg.id).FindMinPositional(
        [&](EntryRef e, std::size_t position) {
          return static_cast<long long>(Rank(store.node(e.node), position));
        },
        store.meter(), StepKind::kSchedulingSearch);
    if (best) return finish(*best, 0, PlacementKind::kAllocation);
  }

  // Class B: configure cfg into spare area (blank or operative node).
  {
    std::optional<NodeId> best;
    bool best_blank = false;
    if (heuristic_ == Heuristic::kFirstFit ||
        heuristic_ == Heuristic::kBestFit ||
        heuristic_ == Heuristic::kWorstFit) {
      // The stateless ranks route through the store's (indexable) host
      // search; the eligibility filter and tie-breaks match the scan below.
      const auto rank = heuristic_ == Heuristic::kFirstFit
                            ? resource::HostRank::kFirstFit
                        : heuristic_ == Heuristic::kBestFit
                            ? resource::HostRank::kBestFit
                            : resource::HostRank::kWorstFit;
      best = store.FindRankedHostNode(cfg.required_area, rank, cfg.family);
      if (best) best_blank = store.node(*best).blank();
    } else {
      // Stateful/randomized ranks depend on scan position or policy state,
      // so they keep the literal counted scan.
      std::int64_t best_rank = 0;
      std::size_t position = 0;
      for (const Node& n : store.nodes()) {
        store.meter().Add(StepKind::kSchedulingSearch);
        ++position;
        if (!cfg.CompatibleWith(n.family())) continue;
        if (!n.CanHost(cfg.required_area)) continue;
        const std::int64_t rank = Rank(n, position - 1);
        if (!best || rank < best_rank) {
          best = n.id();
          best_blank = n.blank();
          best_rank = rank;
        }
      }
    }
    if (best) {
      const EntryRef entry = store.Configure(*best, cfg.id);
      return finish(entry, cfg.config_time,
                    best_blank ? PlacementKind::kConfiguration
                               : PlacementKind::kPartialConfiguration);
    }
  }

  // Class C: reclaim idle entries (Algorithm 1), first feasible plan.
  if (const auto plan = store.FindAnyIdleNode(cfg.required_area, cfg.family)) {
    for (const resource::SlotIndex slot : plan->removable_entries) {
      store.ReclaimSlot(EntryRef{plan->node, slot});
    }
    const EntryRef entry = store.Configure(plan->node, cfg.id);
    return finish(entry, cfg.config_time,
                  PlacementKind::kPartialReconfiguration);
  }

  Decision d;
  d.config = cfg.id;
  d.used_closest_match = resolved->used_closest_match;
  d.outcome = store.AnyBusyNodeCouldFit(cfg.required_area, cfg.family) ? Outcome::kSuspend
                                                           : Outcome::kDiscard;
  return d;
}

}  // namespace dreamsim::sched
