// Seeded corruption for the auditor tests. Every mutation here is a bug by
// construction; the point is that the StructureAuditor must say so.
// lint: allow-file(store-internals)
// lint: allow-file(list-internals)
#include "analysis/corruptor.hpp"

#include <stdexcept>
#include <utility>

#include "resource/store_index.hpp"
#include "resource/sus_queue_index.hpp"

namespace dreamsim::analysis {

void StructureCorruptor::InjectOrphanIdleEntry(resource::ResourceStore& store,
                                               ConfigId config,
                                               resource::EntryRef entry) {
  resource::EntryList& list = store.idle_lists_.at(config.value());
  const auto gpos = static_cast<std::uint32_t>(list.cells_.size());
  // Keep the flat map — and, when partitioned, the shard buckets — fully
  // consistent with the orphan, so only the cross-structure diff against
  // the node slots can catch it.
  resource::EntryList::PosSlot& slot =
      list.InsertSlot(resource::PackEntryRef(entry));
  slot.pos = gpos;
  list.cells_.push_back(entry);
  if (list.shard_of_ != nullptr &&
      entry.node.value() < list.shard_of_->size()) {
    auto& bucket = list.buckets_.at((*list.shard_of_)[entry.node.value()]);
    slot.bucket_pos = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back({entry, gpos});
  }
}

void StructureCorruptor::CorruptPositionMap(resource::ResourceStore& store,
                                            ConfigId config) {
  resource::EntryList& list = store.idle_lists_.at(config.value());
  if (list.cells_.size() < 2) {
    throw std::logic_error("CorruptPositionMap: need >= 2 idle entries");
  }
  const std::size_t s0 = list.FindSlot(resource::PackEntryRef(list.cells_[0]));
  const std::size_t s1 = list.FindSlot(resource::PackEntryRef(list.cells_[1]));
  if (s0 == list.table_.size() || s1 == list.table_.size()) {
    throw std::logic_error("CorruptPositionMap: cells missing from the map");
  }
  std::swap(list.table_[s0].pos, list.table_[s1].pos);
}

void StructureCorruptor::SkewShardBucket(resource::ResourceStore& store,
                                         ConfigId config) {
  resource::EntryList& list = store.idle_lists_.at(config.value());
  if (list.shard_of_ == nullptr) {
    throw std::logic_error("SkewShardBucket: list is not partitioned");
  }
  for (auto& bucket : list.buckets_) {
    if (bucket.empty()) continue;
    ++bucket.front().gpos;
    return;
  }
  throw std::logic_error("SkewShardBucket: no bucketed idle entries");
}

void StructureCorruptor::SkewIndexConfigCount(resource::ResourceStore& store,
                                              NodeId node) {
  if (store.index_ == nullptr) {
    throw std::logic_error("SkewIndexConfigCount: index disabled");
  }
  // Global-view positions are dense node ids.
  resource::PrefixSumTree& counts = store.index_->global_.config_count;
  const std::size_t pos = node.value();
  counts.Assign(pos, counts.Value(pos) + 1);
}

void StructureCorruptor::ExposeFailedNode(resource::ResourceStore& store,
                                          NodeId node) {
  store.nodes_.at(node.value()).failed_ = true;
}

void StructureCorruptor::MisplaceSusBucketEntry(
    resource::SuspensionQueue& queue, TaskId task,
    ConfigId wrong_config) {
  if (queue.index_ == nullptr) {
    throw std::logic_error("MisplaceSusBucketEntry: drain index disabled");
  }
  resource::SusQueueIndex& index = *queue.index_;
  const auto& slot = index.slots_.at(task.value());
  resource::SusQueueIndex::Bucket& home =
      index.buckets_.at(slot.attrs.resolved_config.value());
  home.by_seq.erase(slot.seq);
  index.buckets_[wrong_config.value()].by_seq.insert(slot.seq);
}

void StructureCorruptor::OrphanEventAction(sim::EventQueue& queue) {
  queue.actions_.emplace(queue.next_sequence_, [] {});
  ++queue.next_sequence_;
}

}  // namespace dreamsim::analysis
