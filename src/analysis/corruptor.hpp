// StructureCorruptor: deliberate invariant breakage for auditor tests.
//
// Each method injects exactly one class of structural corruption behind the
// structures' backs (via friendship), so tests/test_structure_auditor.cpp
// can prove the StructureAuditor is not vacuously green: every seeded
// corruption must surface as the matching violation slug, and nothing else.
//
// TEST SUPPORT ONLY. Nothing in the production tree may call this class;
// dreamsim_lint's mutation rules treat it like the structures' own code.
#pragma once

#include "resource/entry_list.hpp"
#include "resource/store.hpp"
#include "resource/suspension_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {

class StructureCorruptor {
 public:
  /// Fig. 3 orphan: appends `entry` to `config`'s idle list, keeping the
  /// position map internally consistent — only the cross-structure diff
  /// against the node slots can catch it. Expected slug: fig3.idle-list.
  static void InjectOrphanIdleEntry(resource::ResourceStore& store,
                                    ConfigId config,
                                    resource::EntryRef entry);

  /// Swaps the position-map entries of the first two cells of `config`'s
  /// idle list (requires >= 2 entries). Expected slug: fig3.positions.
  static void CorruptPositionMap(resource::ResourceStore& store,
                                 ConfigId config);

  /// Bumps the global-position mirror of one partitioned shard-bucket cell
  /// of `config`'s idle list (requires the store to be sharded). Expected
  /// slug: fig3.partition.
  static void SkewShardBucket(resource::ResourceStore& store, ConfigId config);

  /// Bumps the StoreIndex global view's config-count Fenwick leaf for
  /// `node` by one (requires the index to be enabled). Expected slug:
  /// idx.count.
  static void SkewIndexConfigCount(resource::ResourceStore& store,
                                   NodeId node);

  /// Raises the failed flag on `node` directly, leaving every list it
  /// appears in untouched — the "failed node still visible" class.
  /// Expected slugs: fault.visibility (plus fault.count for the stale
  /// store counter).
  static void ExposeFailedNode(resource::ResourceStore& store, NodeId node);

  /// Moves a queued task's seq from its home bucket to `wrong_config`'s
  /// bucket in the SusQueueIndex (requires the drain index). Expected
  /// slug: susidx.bucket.
  static void MisplaceSusBucketEntry(resource::SuspensionQueue& queue,
                                     TaskId task,
                                     ConfigId wrong_config);

  /// Registers a live action whose sequence has no heap entry — an event
  /// that can never fire. Expected slug: evq.orphan-action.
  static void OrphanEventAction(sim::EventQueue& queue);
};

}  // namespace dreamsim::analysis
