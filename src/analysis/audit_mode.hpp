// Audit activation levels for the structure-invariant auditor.
//
// Lives in its own header (instead of structure_auditor.hpp) so that
// SimulationConfig can carry the mode without pulling the auditor — and
// with it every audited structure — into every translation unit.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dreamsim::analysis {

/// When the simulator runs the StructureAuditor.
enum class AuditMode : std::uint8_t {
  /// Never. Must be a true no-op: the only residue on the hot path is one
  /// enum comparison per scheduler decision (bench_audit gates < 1%).
  kOff,
  /// Once, at the end of the run, before the metrics report is assembled.
  kEnd,
  /// After every scheduler decision (arrival attempt, queued re-attempt,
  /// completion drain, fault apply) plus the end-of-run audit. Full
  /// ground-truth reconstruction each time — Debug-scale cost.
  kStep,
};

[[nodiscard]] constexpr std::string_view ToString(AuditMode mode) {
  switch (mode) {
    case AuditMode::kOff:
      return "off";
    case AuditMode::kEnd:
      return "end";
    case AuditMode::kStep:
      return "step";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<AuditMode> ParseAuditMode(
    std::string_view text) {
  if (text == "off") return AuditMode::kOff;
  if (text == "end") return AuditMode::kEnd;
  if (text == "step") return AuditMode::kStep;
  return std::nullopt;
}

}  // namespace dreamsim::analysis
