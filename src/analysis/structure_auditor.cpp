// Ground-truth reconstruction and diffing for every scheduler structure.
//
// Each pass walks the primary state (node slots, the suspension FIFO, the
// live-action table), derives what the audited structure must contain, and
// reports divergences. The membership rules are restated here from the
// documented invariants on purpose — reusing the structures' own Validate()
// helpers would let one bug hide in both places (DESIGN.md §12).
//
// The auditor reads private state of the audited structures via friendship.
// lint: allow-file(store-internals)
// lint: allow-file(list-internals)
#include "analysis/structure_auditor.hpp"

#include "resource/shard_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "resource/entry_list.hpp"
#include "resource/index_primitives.hpp"
#include "resource/node.hpp"
#include "resource/store_index.hpp"
#include "resource/sus_queue_index.hpp"
#include "util/fmt.hpp"

namespace dreamsim::analysis {
namespace {

using resource::AreaTreap;
using resource::EntryList;
using resource::EntryRef;
using resource::EntryRefHash;
using resource::MaxSegTree;
using resource::Node;
using resource::PackEntryRef;
using resource::ResourceStore;
using resource::StoreIndex;
using resource::SusEntryAttrs;
using resource::SuspensionQueue;
using resource::SusQueueIndex;

/// A corrupted structure can contain arbitrarily many divergences; the
/// first handful pinpoints the bug, the rest is noise.
constexpr std::size_t kMaxViolations = 64;

void Report(AuditReport& report, std::string invariant, std::string path,
            std::string detail) {
  if (report.violations.size() >= kMaxViolations) return;
  report.violations.push_back(
      Violation{std::move(invariant), std::move(path), std::move(detail)});
}

std::string EntryPath(ConfigId config, const char* list, std::size_t pos,
                      EntryRef entry) {
  return Format("config {} {} list pos {} (node {} slot {})", config.value(),
                list, pos, entry.node.value(), entry.slot);
}

/// Ground truth recomputed per node straight from the slot array — no
/// derived counter of the node or the store is trusted.
struct NodeTruth {
  std::size_t live = 0;
  std::size_t running = 0;
  Area live_area = 0;  // sum of ReqArea over live slots
  Area busy_area = 0;  // sum of ReqArea over busy slots
};

NodeTruth RecountNode(const ResourceStore& store, const Node& node,
                      AuditReport& report) {
  NodeTruth truth;
  node.ForEachSlot([&](resource::SlotIndex slot,
                       const resource::ConfigTaskPair& pair) {
    ++truth.live;
    if (!store.configs().Contains(pair.config)) {
      Report(report, "fig3.slot",
             Format("node {} slot {}", node.id().value(), slot),
             Format("live slot holds unknown config {}", pair.config.value()));
      return;
    }
    const Area area = store.configs().Get(pair.config).required_area;
    truth.live_area += area;
    if (!pair.idle()) {
      ++truth.running;
      truth.busy_area += area;
    }
  });
  return truth;
}

}  // namespace

std::string AuditReport::Render(std::size_t max_lines) const {
  if (ok()) return "structure audit: clean";
  std::string out = Format("structure audit: {} violation(s)",
                           violations.size());
  std::size_t shown = 0;
  for (const Violation& v : violations) {
    if (shown++ == max_lines) {
      out += Format("\n  ... {} more", violations.size() - max_lines);
      break;
    }
    out += Format("\n  [{}] {}: {}", v.invariant, v.path, v.detail);
  }
  return out;
}

// --- Fig. 3 idle/busy lists -------------------------------------------------

void StructureAuditor::AuditEntryLists(const ResourceStore& store,
                                       AuditReport& report) {
  const std::size_t config_count = store.configs_.size();
  if (store.idle_lists_.size() != config_count ||
      store.busy_lists_.size() != config_count) {
    Report(report, "fig3.idle-list", "catalogue",
           Format("{} idle / {} busy lists for {} configurations",
                  store.idle_lists_.size(), store.busy_lists_.size(),
                  config_count));
    return;
  }

  // Ground truth: walk every live slot of every node.
  using EntrySet = std::unordered_set<EntryRef, EntryRefHash>;
  std::vector<EntrySet> expected_idle(config_count);
  std::vector<EntrySet> expected_busy(config_count);
  for (const Node& node : store.nodes_) {
    node.ForEachSlot([&](resource::SlotIndex slot,
                         const resource::ConfigTaskPair& pair) {
      if (pair.config.value() >= config_count) return;  // fig3.slot above
      const EntryRef entry{node.id(), slot};
      (pair.idle() ? expected_idle : expected_busy)[pair.config.value()]
          .insert(entry);
    });
  }

  const auto audit_list = [&](ConfigId config, const EntryList& list,
                              const EntrySet& expected, const char* label) {
    EntrySet seen;
    for (std::size_t pos = 0; pos < list.cells_.size(); ++pos) {
      const EntryRef entry = list.cells_[pos];
      if (!seen.insert(entry).second) {
        Report(report, Format("fig3.{}-list", label),
               EntryPath(config, label, pos, entry), "duplicate entry");
        continue;
      }
      if (expected.contains(entry)) continue;
      // Diagnose the orphan: failed node, dead slot, or mismatched state.
      if (entry.node.value() >= store.nodes_.size()) {
        Report(report, Format("fig3.{}-list", label),
               EntryPath(config, label, pos, entry), "unknown node");
        continue;
      }
      const Node& node = store.nodes_[entry.node.value()];
      if (node.failed()) {
        Report(report, "fault.visibility",
               EntryPath(config, label, pos, entry),
               Format("failed node still visible in the {} list", label));
      } else if (!node.SlotLive(entry.slot)) {
        Report(report, Format("fig3.{}-list", label),
               EntryPath(config, label, pos, entry),
               "entry references a dead slot");
      } else {
        const resource::ConfigTaskPair& pair = node.Slot(entry.slot);
        Report(report, Format("fig3.{}-list", label),
               EntryPath(config, label, pos, entry),
               Format("slot holds config {} ({}); list expects config {} ({})",
                      pair.config.value(), pair.idle() ? "idle" : "busy",
                      config.value(), label));
      }
    }
    for (const EntryRef& entry : expected) {
      if (!seen.contains(entry)) {
        Report(report, Format("fig3.{}-list", label),
               Format("config {} {} list", config.value(), label),
               Format("node {} slot {} is {} but missing from the list",
                      entry.node.value(), entry.slot, label));
      }
    }
    // Position map (open-addressing flat table): exact inverse of the cell
    // vector.
    if (list.table_used_ != list.cells_.size()) {
      Report(report, "fig3.positions",
             Format("config {} {} list", config.value(), label),
             Format("{} occupied table slots for {} cells", list.table_used_,
                    list.cells_.size()));
    }
    for (std::size_t pos = 0; pos < list.cells_.size(); ++pos) {
      const std::size_t slot = list.FindSlot(PackEntryRef(list.cells_[pos]));
      if (slot == list.table_.size()) {
        Report(report, "fig3.positions",
               EntryPath(config, label, pos, list.cells_[pos]),
               "cell has no position entry");
      } else if (list.table_[slot].pos != pos) {
        Report(report, "fig3.positions",
               EntryPath(config, label, pos, list.cells_[pos]),
               Format("position map says {}", list.table_[slot].pos));
      }
    }
    // Shard partition buckets (DESIGN.md §14): every cell mirrored into
    // exactly its node's shard bucket, carrying its current global position
    // (the tie-break key of the per-shard scans), with a valid back-pointer.
    if (list.shard_of_ == nullptr) return;
    const std::vector<std::uint32_t>& shard_of = *list.shard_of_;
    std::size_t mirrored = 0;
    for (std::size_t s = 0; s < list.buckets_.size(); ++s) {
      for (const EntryList::ShardCell& cell : list.buckets_[s]) {
        const std::string path = Format(
            "config {} {} list shard {} (node {} slot {})", config.value(),
            label, s, cell.entry.node.value(), cell.entry.slot);
        if (cell.gpos >= list.cells_.size() ||
            !(list.cells_[cell.gpos] == cell.entry)) {
          Report(report, "fig3.partition", path,
                 Format("bucket cell's global position {} does not point "
                        "back at it",
                        cell.gpos));
          continue;
        }
        if (cell.entry.node.value() >= shard_of.size() ||
            shard_of[cell.entry.node.value()] != s) {
          Report(report, "fig3.partition", path,
                 "cell bucketed in the wrong shard");
        }
      }
      mirrored += list.buckets_[s].size();
    }
    if (mirrored != list.cells_.size()) {
      Report(report, "fig3.partition",
             Format("config {} {} list", config.value(), label),
             Format("{} bucket cells mirror {} global cells", mirrored,
                    list.cells_.size()));
    }
    for (std::size_t pos = 0; pos < list.cells_.size(); ++pos) {
      const EntryRef entry = list.cells_[pos];
      const std::size_t slot = list.FindSlot(PackEntryRef(entry));
      if (slot == list.table_.size()) continue;  // fig3.positions above
      if (entry.node.value() >= shard_of.size()) continue;
      const auto& bucket = list.buckets_[shard_of[entry.node.value()]];
      const std::uint32_t bpos = list.table_[slot].bucket_pos;
      if (bpos >= bucket.size() || !(bucket[bpos].entry == entry)) {
        Report(report, "fig3.partition", EntryPath(config, label, pos, entry),
               "bucket-position back-pointer is stale");
      }
    }
  };

  for (std::size_t c = 0; c < config_count; ++c) {
    const ConfigId config{static_cast<std::uint32_t>(c)};
    audit_list(config, store.idle_lists_[c], expected_idle[c], "idle");
    audit_list(config, store.busy_lists_[c], expected_busy[c], "busy");
  }
}

// --- Eq. 4 area accounting --------------------------------------------------

void StructureAuditor::AuditAreaAccounting(const ResourceStore& store,
                                           AuditReport& report) {
  if (store.busy_area_.size() != store.nodes_.size()) {
    Report(report, "eq4.busy-area", "store",
           Format("busy-area mirror tracks {} nodes, store has {}",
                  store.busy_area_.size(), store.nodes_.size()));
    return;
  }
  for (const Node& node : store.nodes_) {
    const NodeTruth truth = RecountNode(store, node, report);
    const std::string path = Format("node {}", node.id().value());
    if (node.available_area() != node.total_area() - truth.live_area) {
      Report(report, "eq4.area", path,
             Format("AvailableArea {} != TotalArea {} - live ReqArea {}",
                    node.available_area(), node.total_area(),
                    truth.live_area));
    }
    if (node.config_count() != truth.live ||
        node.running_tasks() != truth.running) {
      Report(report, "fig3.slot", path,
             Format("counters say {} live / {} running, slots hold {} / {}",
                    node.config_count(), node.running_tasks(), truth.live,
                    truth.running));
    }
    if (store.busy_area_[node.id().value()] != truth.busy_area) {
      Report(report, "eq4.busy-area", path,
             Format("mirror {} != busy ReqArea sum {}",
                    store.busy_area_[node.id().value()], truth.busy_area));
    }
  }
}

// --- Blank list -------------------------------------------------------------

void StructureAuditor::AuditBlankList(const ResourceStore& store,
                                      AuditReport& report) {
  std::unordered_set<std::uint32_t> expected;
  for (const Node& node : store.nodes_) {
    bool any_slot = false;
    node.ForEachSlot([&](resource::SlotIndex, const resource::ConfigTaskPair&) {
      any_slot = true;
    });
    if (!any_slot && !node.failed()) expected.insert(node.id().value());
  }
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t pos = 0; pos < store.blank_.size(); ++pos) {
    const NodeId id = store.blank_[pos];
    const std::string path = Format("blank list pos {} (node {})", pos,
                                    id.value());
    if (!seen.insert(id.value()).second) {
      Report(report, "blank.list", path, "duplicate entry");
      continue;
    }
    if (!expected.contains(id.value())) {
      const bool failed = id.value() < store.nodes_.size() &&
                          store.nodes_[id.value()].failed();
      Report(report, failed ? "fault.visibility" : "blank.list", path,
             failed ? "failed node still in the blank list"
                    : "node has live configurations");
    }
  }
  for (const std::uint32_t id : expected) {
    if (!seen.contains(id)) {
      Report(report, "blank.list", Format("node {}", id),
             "blank node missing from the blank list");
    }
  }
  // blank_pos_: exact inverse of blank_ (kNotBlank everywhere else).
  if (store.blank_pos_.size() != store.nodes_.size()) {
    Report(report, "blank.pos", "store",
           Format("blank-pos tracks {} nodes, store has {}",
                  store.blank_pos_.size(), store.nodes_.size()));
    return;
  }
  std::vector<std::size_t> truth(store.nodes_.size(),
                                 ResourceStore::kNotBlank);
  for (std::size_t pos = 0; pos < store.blank_.size(); ++pos) {
    if (store.blank_[pos].value() < truth.size()) {
      truth[store.blank_[pos].value()] = pos;
    }
  }
  for (std::size_t id = 0; id < truth.size(); ++id) {
    if (store.blank_pos_[id] != truth[id]) {
      Report(report, "blank.pos", Format("node {}", id),
             Format("blank-pos {} != blank-list position {}",
                    store.blank_pos_[id] == ResourceStore::kNotBlank
                        ? std::string("none")
                        : Format("{}", store.blank_pos_[id]),
                    truth[id] == ResourceStore::kNotBlank
                        ? std::string("none")
                        : Format("{}", truth[id])));
    }
  }
}

// --- Fault visibility -------------------------------------------------------

void StructureAuditor::AuditFaultVisibility(const ResourceStore& store,
                                            AuditReport& report) {
  std::size_t failed = 0;
  for (const Node& node : store.nodes_) {
    if (!node.failed()) continue;
    ++failed;
    const std::string path = Format("node {}", node.id().value());
    bool any_slot = false;
    node.ForEachSlot([&](resource::SlotIndex, const resource::ConfigTaskPair&) {
      any_slot = true;
    });
    if (any_slot) {
      Report(report, "fault.visibility", path,
             "failed node still holds configurations");
    }
    if (node.available_area() != node.total_area()) {
      Report(report, "fault.visibility", path,
             "failed node's area was not reclaimed");
    }
  }
  if (store.failed_count_ != failed) {
    Report(report, "fault.count", "store",
           Format("failed-count {} != {} failed nodes", store.failed_count_,
                  failed));
  }
}

// --- StoreIndex mirror ------------------------------------------------------

void StructureAuditor::AuditStoreIndex(const ResourceStore& store,
                                       AuditReport& report) {
  if (store.index_ == nullptr) return;
  const StoreIndex& index = *store.index_;
  if (index.cached_.size() != store.nodes_.size()) {
    Report(report, "idx.size", "index",
           Format("index tracks {} nodes, store has {}", index.cached_.size(),
                  store.nodes_.size()));
    return;
  }

  // Ground truth per node, recomputed from the slots.
  struct IndexTruth {
    NodeTruth counts;
    bool failed = false;
    std::uint32_t family = 0;
  };
  std::vector<IndexTruth> truth(store.nodes_.size());
  for (const Node& node : store.nodes_) {
    IndexTruth& t = truth[node.id().value()];
    t.counts = RecountNode(store, node, report);
    t.failed = node.failed();
    t.family = node.family().value();
  }

  // Snapshot cache: every field must match a fresh recapture.
  for (const Node& node : store.nodes_) {
    const std::uint32_t id = node.id().value();
    const StoreIndex::Snapshot& snap = index.cached_[id];
    const IndexTruth& t = truth[id];
    const std::string path = Format("node {}", id);
    if (snap.total != node.total_area() ||
        snap.available != node.available_area() ||
        snap.potential != node.total_area() - t.counts.busy_area ||
        snap.config_count != static_cast<std::int64_t>(t.counts.live) ||
        snap.blank != (t.counts.live == 0) ||
        snap.busy != (t.counts.running > 0) || snap.failed != t.failed ||
        snap.family != t.family) {
      Report(report, "idx.snapshot", path,
             Format("cached snapshot diverges from node state "
                    "(cached potential {}, count {}; truth {}, {})",
                    snap.potential, snap.config_count,
                    node.total_area() - t.counts.busy_area, t.counts.live));
    }
  }

  // Reconstruct the view composition: every node is in the global view and
  // in the view of its family value (including the invalid "familyless"
  // value), in ascending id order.
  std::map<std::uint32_t, std::vector<std::uint32_t>> expected_families;
  std::vector<std::uint32_t> expected_global;
  for (const Node& node : store.nodes_) {
    expected_global.push_back(node.id().value());
    expected_families[node.family().value()].push_back(node.id().value());
  }

  const auto audit_view = [&](const StoreIndex::View& view,
                              const std::vector<std::uint32_t>& expected_ids,
                              const std::string& label) {
    if (view.ids != expected_ids) {
      Report(report, "idx.view", label,
             Format("view holds {} members, ground truth {}",
                    view.ids.size(), expected_ids.size()));
      return;
    }
    const std::size_t count = view.ids.size();
    if (view.potential.size() != count || view.busy_total.size() != count ||
        view.available.size() != count || view.config_count.size() != count) {
      Report(report, "idx.tree", label,
             Format("tree sizes disagree with {} members", count));
      return;
    }
    std::set<StoreIndex::AreaKey> want_blank;
    std::set<StoreIndex::AreaKey> want_all;
    std::set<StoreIndex::AreaKey> want_partial;
    std::set<StoreIndex::AreaKey> want_idle_cfg;
    for (std::size_t pos = 0; pos < count; ++pos) {
      const std::uint32_t id = view.ids[pos];
      const Node& node = store.nodes_[id];
      const IndexTruth& t = truth[id];
      const std::string path = Format("{} pos {} (node {})", label, pos, id);
      const bool blank = t.counts.live == 0;
      const bool busy = t.counts.running > 0;
      const std::int64_t potential =
          t.failed ? MaxSegTree::kNegInf
                   : node.total_area() - t.counts.busy_area;
      if (view.potential.Value(pos) != potential) {
        Report(report, "idx.tree", path,
               Format("potential {} != {}", view.potential.Value(pos),
                      potential));
      }
      const std::int64_t busy_total =
          busy ? node.total_area() : MaxSegTree::kNegInf;
      if (view.busy_total.Value(pos) != busy_total) {
        Report(report, "idx.tree", path,
               Format("busy-total {} != {}", view.busy_total.Value(pos),
                      busy_total));
      }
      const std::int64_t available =
          t.failed ? MaxSegTree::kNegInf : node.available_area();
      if (view.available.Value(pos) != available) {
        Report(report, "idx.tree", path,
               Format("available {} != {}", view.available.Value(pos),
                      available));
      }
      if (view.config_count.Value(pos) !=
          static_cast<std::int64_t>(t.counts.live)) {
        Report(report, "idx.count", path,
               Format("config-count leaf {} != {} live slots",
                      view.config_count.Value(pos), t.counts.live));
      }
      if (!t.failed) want_all.insert({node.available_area(), id});
      if (blank && !t.failed) want_blank.insert({node.total_area(), id});
      if (!blank) want_partial.insert({node.available_area(), id});
      if (!blank && !busy) want_idle_cfg.insert({node.total_area(), id});
    }
    const auto diff_set = [&](const std::set<StoreIndex::AreaKey>& live,
                              const std::set<StoreIndex::AreaKey>& want,
                              const char* name) {
      if (live == want) return;
      for (const StoreIndex::AreaKey& key : live) {
        if (!want.contains(key)) {
          const bool failed = key.second < truth.size() &&
                              truth[key.second].failed;
          Report(report, failed ? "fault.visibility" : "idx.set",
                 Format("{} {} (area {}, node {})", label, name, key.first,
                        key.second),
                 failed ? "failed node still keyed in the index"
                        : "stray key");
          return;
        }
      }
      for (const StoreIndex::AreaKey& key : want) {
        if (!live.contains(key)) {
          Report(report, "idx.set",
                 Format("{} {} (area {}, node {})", label, name, key.first,
                        key.second),
                 "expected key missing");
          return;
        }
      }
    };
    diff_set(view.blank_by_total, want_blank, "blank-by-total");
    diff_set(view.all_by_avail, want_all, "all-by-avail");
    diff_set(view.partial_by_avail, want_partial, "partial-by-avail");
    diff_set(view.idle_cfg_by_total, want_idle_cfg, "idle-cfg-by-total");
  };

  audit_view(index.global_, expected_global, "global view");
  for (const auto& [family, ids] : expected_families) {
    const auto it = index.family_views_.find(family);
    if (it == index.family_views_.end()) {
      Report(report, "idx.view", Format("family {} view", family),
             "view missing");
      continue;
    }
    audit_view(it->second, ids, Format("family {} view", family));
    // family_pos: the cached position must point at this view slot.
    for (std::size_t pos = 0; pos < ids.size(); ++pos) {
      if (index.cached_[ids[pos]].family_pos != pos) {
        Report(report, "idx.snapshot",
               Format("node {}", ids[pos]),
               Format("family_pos {} != view position {}",
                      index.cached_[ids[pos]].family_pos, pos));
      }
    }
  }
  if (index.family_views_.size() != expected_families.size()) {
    Report(report, "idx.view", "index",
           Format("{} family views for {} distinct family values",
                  index.family_views_.size(), expected_families.size()));
  }
}

// --- Sharded kernel partition + per-shard indexes ---------------------------

void StructureAuditor::AuditShards(const ResourceStore& store,
                                   AuditReport& report) {
  const resource::ShardEngine* engine = store.shard_engine();
  if (engine == nullptr) return;
  const std::size_t shards = engine->shard_count();

  // Partition exactness: every node id appears in exactly one shard, each
  // member list is strictly ascending, shard_of agrees with membership, and
  // the assignment matches the pure rule (never insertion/thread order).
  std::vector<std::size_t> owners(store.nodes_.size(), 0);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::vector<std::uint32_t>& members = engine->members(s);
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      const std::uint32_t id = members[pos];
      const std::string path = Format("shard {} pos {} (node {})", s, pos, id);
      if (id >= store.nodes_.size()) {
        Report(report, "shard.partition", path, "member id out of range");
        continue;
      }
      ++owners[id];
      if (pos > 0 && members[pos - 1] >= id) {
        Report(report, "shard.partition", path,
               "member ids not strictly ascending");
      }
      if (engine->shard_of(id) != s) {
        Report(report, "shard.partition", path,
               Format("shard_of says shard {}", engine->shard_of(id)));
      }
      const Node& node = store.nodes_[id];
      const std::uint32_t want =
          engine->shard_by() == resource::ShardBy::kFamily
              ? node.family().value() % static_cast<std::uint32_t>(shards)
              : id % static_cast<std::uint32_t>(shards);
      if (want != s) {
        Report(report, "shard.partition", path,
               Format("assignment rule places the node in shard {}", want));
      }
    }
  }
  for (std::size_t id = 0; id < owners.size(); ++id) {
    if (owners[id] != 1) {
      Report(report, "shard.partition", Format("node {}", id),
             Format("owned by {} shards (want exactly 1)", owners[id]));
    }
  }

  // Per-shard sparse index mirrors: the cached snapshot of every member must
  // match ground truth recomputed from the node's slots, and the shard-view
  // tree leaves (the source of the Algorithm 1 charge terms and the merged
  // candidates) must agree with it.
  for (std::size_t s = 0; s < shards; ++s) {
    const StoreIndex& index = engine->shard_index(s);
    const std::vector<std::uint32_t>& members = engine->members(s);
    if (index.cached_.size() != members.size() ||
        index.global_.ids != members) {
      Report(report, "shard.index", Format("shard {}", s),
             Format("index tracks {} nodes, shard holds {}",
                    index.cached_.size(), members.size()));
      continue;
    }
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      const Node& node = store.nodes_[members[pos]];
      const NodeTruth t = RecountNode(store, node, report);
      const StoreIndex::Snapshot& snap = index.cached_[pos];
      const std::string path =
          Format("shard {} pos {} (node {})", s, pos, node.id().value());
      if (snap.total != node.total_area() ||
          snap.available != node.available_area() ||
          snap.potential != node.total_area() - t.busy_area ||
          snap.config_count != static_cast<std::int64_t>(t.live) ||
          snap.blank != (t.live == 0) || snap.busy != (t.running > 0) ||
          snap.failed != node.failed() ||
          snap.family != node.family().value()) {
        Report(report, "shard.index", path,
               Format("cached snapshot diverges from node state "
                      "(cached potential {}, count {}; truth {}, {})",
                      snap.potential, snap.config_count,
                      node.total_area() - t.busy_area, t.live));
      }
      if (index.global_.config_count.Value(pos) !=
          static_cast<std::int64_t>(t.live)) {
        Report(report, "shard.index", path,
               Format("config-count leaf {} != {} live slots",
                      index.global_.config_count.Value(pos), t.live));
      }
      const std::int64_t available =
          node.failed() ? MaxSegTree::kNegInf : node.available_area();
      if (index.global_.available.Value(pos) != available) {
        Report(report, "shard.index", path,
               Format("available leaf {} != {}",
                      index.global_.available.Value(pos), available));
      }
    }
  }
}

// --- Suspension queue + drain index ----------------------------------------

void StructureAuditor::AuditSusIndex(const SuspensionQueue& queue,
                                     AuditReport& report) {
  const SusQueueIndex& index = *queue.index_;
  // Domain: indexed tasks == queued tasks.
  if (index.slots_.size() != queue.queue_.size()) {
    Report(report, "susidx.domain", "suspension index",
           Format("index holds {} tasks, queue holds {}", index.slots_.size(),
                  queue.queue_.size()));
  }
  std::uint64_t prev_seq = 0;
  bool first = true;
  std::unordered_set<std::uint64_t> live_seqs;
  for (std::size_t pos = 0; pos < queue.queue_.size(); ++pos) {
    const TaskId task = queue.queue_[pos];
    const std::string path = Format("queue pos {} (task {})", pos,
                                    task.value());
    const auto it = index.slots_.find(task.value());
    if (it == index.slots_.end()) {
      Report(report, "susidx.domain", path, "queued task not indexed");
      continue;
    }
    const std::uint64_t seq = it->second.seq;
    live_seqs.insert(seq);
    if (seq >= index.next_seq_) {
      Report(report, "susidx.seq", path,
             Format("seq {} out of range (next {})", seq, index.next_seq_));
    }
    if (!first && seq <= prev_seq) {
      Report(report, "susidx.seq", path,
             Format("seq {} not above predecessor {} (FIFO order == seq "
                    "order)",
                    seq, prev_seq));
    }
    first = false;
    prev_seq = seq;
    const auto attrs_it = queue.attrs_.find(task.value());
    if (attrs_it != queue.attrs_.end() &&
        !(it->second.attrs == attrs_it->second)) {
      Report(report, "susidx.attrs", path,
             "indexed attrs diverge from the queue's attribute table");
    }
    if (static_cast<std::size_t>(index.live_.Prefix(
            static_cast<std::size_t>(seq))) != pos) {
      Report(report, "susidx.fenwick", path,
             Format("rank of seq {} is {}, queue position is {}", seq,
                    index.live_.Prefix(static_cast<std::size_t>(seq)), pos));
    }
  }
  // Fenwick leaves: exactly the live seqs carry a 1.
  if (index.live_.size() != index.next_seq_) {
    Report(report, "susidx.fenwick", "live tree",
           Format("{} leaves for {} seqs ever", index.live_.size(),
                  index.next_seq_));
  }
  for (std::size_t seq = 0; seq < index.live_.size(); ++seq) {
    const std::int64_t value = index.live_.Value(seq);
    const std::int64_t want = live_seqs.contains(seq) ? 1 : 0;
    if (value != want) {
      Report(report, "susidx.fenwick", Format("seq {}", seq),
             Format("leaf {} != {}", value, want));
      break;
    }
  }

  // Buckets: expected content per resolved config, built from the queue's
  // own attribute table (the ground truth the index mirrors).
  std::map<std::uint32_t, std::set<std::uint64_t>> want_bucket_seqs;
  std::map<std::uint32_t, std::set<std::pair<double, std::uint64_t>>>
      want_bucket_prio;
  std::map<std::uint32_t, std::map<std::uint64_t, SusEntryAttrs>> want_groups;
  std::unordered_map<std::uint64_t, std::uint32_t> config_of_seq;
  for (const TaskId task : queue.queue_) {
    const auto slot_it = index.slots_.find(task.value());
    const auto attrs_it = queue.attrs_.find(task.value());
    if (slot_it == index.slots_.end() || attrs_it == queue.attrs_.end()) {
      continue;  // already reported above
    }
    const std::uint64_t seq = slot_it->second.seq;
    const SusEntryAttrs& attrs = attrs_it->second;
    want_bucket_seqs[attrs.resolved_config.value()].insert(seq);
    want_bucket_prio[attrs.resolved_config.value()].insert(
        {-attrs.priority, seq});
    want_groups[SusQueueIndex::GroupKeyOf(attrs)].emplace(seq, attrs);
    config_of_seq.emplace(seq, attrs.resolved_config.value());
  }
  std::vector<std::uint32_t> bucket_keys;
  for (const auto& [config, bucket] : index.buckets_) {
    bucket_keys.push_back(config);
  }
  std::sort(bucket_keys.begin(), bucket_keys.end());
  for (const std::uint32_t config : bucket_keys) {
    const SusQueueIndex::Bucket& bucket = index.buckets_.at(config);
    const auto& want_seqs = want_bucket_seqs[config];  // empty set if absent
    for (const std::uint64_t seq : bucket.by_seq) {
      if (want_seqs.contains(seq)) continue;
      const auto home = config_of_seq.find(seq);
      Report(report, "susidx.bucket",
             Format("config {} bucket (seq {})", config, seq),
             home == config_of_seq.end()
                 ? std::string("entry is not queued at all")
                 : Format("entry belongs in the config {} bucket",
                          home->second));
    }
    for (const std::uint64_t seq : want_seqs) {
      if (!bucket.by_seq.contains(seq)) {
        Report(report, "susidx.bucket",
               Format("config {} bucket (seq {})", config, seq),
               "expected entry missing");
      }
    }
    if (bucket.by_priority != want_bucket_prio[config]) {
      Report(report, "susidx.bucket", Format("config {} bucket", config),
             "priority set diverges from ground truth");
    }
  }
  for (const auto& [config, want] : want_bucket_seqs) {
    if (!want.empty() && !index.buckets_.contains(config)) {
      Report(report, "susidx.bucket", Format("config {} bucket", config),
             Format("bucket missing ({} expected entries)", want.size()));
    }
  }

  // Groups: seq-tree leaves and the priority treap per family constraint.
  std::vector<std::uint32_t> group_keys;
  for (const auto& [family, group] : index.groups_) {
    group_keys.push_back(family);
  }
  std::sort(group_keys.begin(), group_keys.end());
  for (const std::uint32_t family : group_keys) {
    const SusQueueIndex::Group& group = index.groups_.at(family);
    const auto& members = want_groups[family];  // empty map if absent
    const std::string label =
        family == SusQueueIndex::kWildcardGroup
            ? std::string("wildcard group")
            : Format("family {} group", family);
    for (std::size_t pos = 0; pos < group.by_seq.size(); ++pos) {
      const auto member = members.find(pos);
      const std::int64_t want = member == members.end()
                                    ? MaxSegTree::kNegInf
                                    : -member->second.needed_area;
      if (group.by_seq.Value(pos) != want) {
        Report(report, "susidx.group", Format("{} seq {}", label, pos),
               member == members.end()
                   ? std::string("stale live leaf for an absent entry")
                   : Format("leaf {} != -needed_area {}",
                            group.by_seq.Value(pos),
                            member->second.needed_area));
        break;
      }
    }
    for (const auto& [seq, attrs] : members) {
      if (seq >= group.by_seq.size()) {
        Report(report, "susidx.group", Format("{} seq {}", label, seq),
               "member beyond the seq tree");
      }
    }

    // Treap: in-order walk must yield exactly the members sorted by
    // (-priority, seq), with correct min-area augmentation and heap order.
    std::vector<std::pair<double, std::uint64_t>> walked;
    std::size_t visits = 0;
    bool structural = false;
    const std::function<Area(std::int32_t, std::uint64_t)> walk =
        [&](std::int32_t n, std::uint64_t parent_heap) -> Area {
      if (n == AreaTreap::kNull || structural) {
        return std::numeric_limits<Area>::max();
      }
      if (++visits > group.by_priority.nodes_.size()) {
        structural = true;  // cycle: more visits than allocated nodes
        return std::numeric_limits<Area>::max();
      }
      const AreaTreap::Node& node =
          group.by_priority.nodes_[static_cast<std::size_t>(n)];
      if (node.heap > parent_heap) {
        Report(report, "susidx.treap", Format("{} seq {}", label, node.seq),
               "treap heap order violated");
        structural = true;
      }
      const Area left = walk(node.left, node.heap);
      walked.emplace_back(node.neg_priority, node.seq);
      const Area right = walk(node.right, node.heap);
      const Area subtree = std::min({node.area, left, right});
      if (node.min_area != subtree) {
        Report(report, "susidx.treap", Format("{} seq {}", label, node.seq),
               Format("min-area {} != subtree minimum {}", node.min_area,
                      subtree));
      }
      return subtree;
    };
    walk(group.by_priority.root_,
         std::numeric_limits<std::uint64_t>::max());
    if (structural) {
      Report(report, "susidx.treap", label, "treap walk aborted (cycle?)");
      continue;
    }
    std::vector<std::pair<double, std::uint64_t>> want_walk;
    for (const auto& [seq, attrs] : members) {
      want_walk.emplace_back(-attrs.priority, seq);
    }
    std::sort(want_walk.begin(), want_walk.end());
    if (walked != want_walk || group.by_priority.count_ != members.size()) {
      Report(report, "susidx.treap", label,
             Format("in-order walk yields {} entries, ground truth {}",
                    walked.size(), members.size()));
    }
  }
  for (const auto& [family, members] : want_groups) {
    if (!members.empty() && !index.groups_.contains(family)) {
      Report(report, "susidx.group", Format("family {} group", family),
             Format("group missing ({} expected members)", members.size()));
    }
  }
}

AuditReport StructureAuditor::AuditSuspensionQueue(
    const SuspensionQueue& queue) {
  AuditReport report;
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t pos = 0; pos < queue.queue_.size(); ++pos) {
    const TaskId task = queue.queue_[pos];
    if (!seen.insert(task.value()).second) {
      Report(report, "sus.unique",
             Format("queue pos {} (task {})", pos, task.value()),
             "task queued twice");
    }
    if (!queue.attrs_.contains(task.value())) {
      Report(report, "sus.attrs",
             Format("queue pos {} (task {})", pos, task.value()),
             "queued task has no attribute entry");
    }
  }
  if (queue.attrs_.size() != seen.size()) {
    Report(report, "sus.attrs", "suspension queue",
           Format("{} attribute entries for {} distinct queued tasks",
                  queue.attrs_.size(), seen.size()));
  }
  if (queue.capacity_ != 0 && queue.queue_.size() > queue.capacity_) {
    Report(report, "sus.capacity", "suspension queue",
           Format("{} queued tasks exceed capacity {}", queue.queue_.size(),
                  queue.capacity_));
  }
  if (queue.index_ != nullptr) AuditSusIndex(queue, report);
  return report;
}

// --- Event queue ------------------------------------------------------------

AuditReport StructureAuditor::AuditEventQueue(const sim::EventQueue& queue,
                                              Tick now) {
  AuditReport report;
  // Pop a copy: the pop order re-derives the heap's total order, so a
  // corrupted heap array surfaces as an out-of-order stream.
  auto heap = queue.heap_;
  std::unordered_set<std::uint64_t> heap_seqs;
  bool have_prev = false;
  sim::EventQueue::Entry prev{};
  const sim::EventQueue::Later later;
  std::size_t pos = 0;
  while (!heap.empty()) {
    const sim::EventQueue::Entry entry = heap.top();
    heap.pop();
    const std::string path = Format("heap pos {} (seq {}, tick {})", pos,
                                    entry.sequence, entry.tick);
    ++pos;
    if (entry.sequence == 0 || entry.sequence >= queue.next_sequence_) {
      Report(report, "evq.sequence", path,
             Format("sequence out of range [1, {})", queue.next_sequence_));
    }
    if (!heap_seqs.insert(entry.sequence).second) {
      Report(report, "evq.sequence", path, "duplicate sequence in the heap");
    }
    if (have_prev && later(prev, entry)) {
      Report(report, "evq.order", path,
             Format("(tick {}, seq {}) popped first despite being later",
                    prev.tick, prev.sequence));
    }
    const bool live = queue.actions_.contains(entry.sequence);
    if (live && entry.tick < now) {
      Report(report, "evq.past-tick", path,
             Format("live event scheduled before now ({})", now));
    }
    prev = entry;
    have_prev = true;
  }
  std::vector<std::uint64_t> orphaned;
  for (const auto& kv : queue.actions_) {
    if (!heap_seqs.contains(kv.first)) orphaned.push_back(kv.first);
  }
  std::sort(orphaned.begin(), orphaned.end());
  for (const std::uint64_t sequence : orphaned) {
    Report(report, "evq.orphan-action", Format("seq {}", sequence),
           "live action has no heap entry (event can never fire)");
  }
  return report;
}

// --- Entry points -----------------------------------------------------------

AuditReport StructureAuditor::AuditStore(const ResourceStore& store) {
  AuditReport report;
  AuditEntryLists(store, report);
  AuditAreaAccounting(store, report);
  AuditBlankList(store, report);
  AuditFaultVisibility(store, report);
  AuditStoreIndex(store, report);
  AuditShards(store, report);
  return report;
}

AuditReport StructureAuditor::AuditMetrics(const ResourceStore& store,
                                           const SuspensionQueue& queue,
                                           const sim::EventQueue& events,
                                           const resource::TaskStore& tasks) {
  AuditReport report;
  if (!obs::MetricsRegistry::enabled()) return report;
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Instance().TakeSnapshot();
  const auto value = [&snap](obs::MetricId id) {
    return snap.value[static_cast<std::size_t>(id)];
  };
  const auto check = [&report](bool ok, std::string_view path,
                               std::string detail) {
    if (!ok) {
      report.violations.push_back(
          {"metrics.conservation", std::string(path), std::move(detail)});
    }
  };
  using obs::MetricId;

  // Event-queue flow: every pushed event is live, executed, or cancelled.
  const std::uint64_t pushed = value(MetricId::kEvqPushed);
  const std::uint64_t popped = value(MetricId::kEvqPopped);
  const std::uint64_t cancelled = value(MetricId::kEvqCancelled);
  check(pushed == popped + cancelled + events.size(), "event-queue",
        Format("pushed {} != popped {} + cancelled {} + live {}", pushed,
               popped, cancelled, events.size()));
  check(value(MetricId::kEvqDepth) == events.size(), "event-queue",
        Format("depth gauge {} != live events {}", value(MetricId::kEvqDepth),
               events.size()));

  // Suspension-queue flow and depth gauge.
  const std::uint64_t enqueued = value(MetricId::kSusEnqueued);
  const std::uint64_t removed = value(MetricId::kSusRemoved);
  check(enqueued == removed + queue.size(), "suspension-queue",
        Format("enqueued {} != removed {} + queued {}", enqueued, removed,
               queue.size()));
  check(value(MetricId::kSusDepth) == queue.size(), "suspension-queue",
        Format("depth gauge {} != queued {}", value(MetricId::kSusDepth),
               queue.size()));

  // Fault flow: failures not yet repaired are exactly the failed nodes.
  const std::uint64_t failures = value(MetricId::kFaultFailures);
  const std::uint64_t repairs = value(MetricId::kFaultRepairs);
  check(failures == repairs + store.failed_node_count(), "faults",
        Format("failures {} != repairs {} + failed nodes {}", failures,
               repairs, store.failed_node_count()));
  check(value(MetricId::kFaultFailedNodes) == store.failed_node_count(),
        "faults",
        Format("failed-nodes gauge {} != failed nodes {}",
               value(MetricId::kFaultFailedNodes),
               store.failed_node_count()));

  // Terminal task counters vs the TaskStore's ground-truth states (the
  // counter increments share the call sites that set the states).
  const std::size_t completed =
      tasks.CountInState(resource::TaskState::kCompleted);
  const std::size_t discarded =
      tasks.CountInState(resource::TaskState::kDiscarded);
  check(value(MetricId::kTasksCompleted) == completed, "tasks",
        Format("completed counter {} != completed tasks {}",
               value(MetricId::kTasksCompleted), completed));
  check(value(MetricId::kTasksDiscarded) == discarded, "tasks",
        Format("discarded counter {} != discarded tasks {}",
               value(MetricId::kTasksDiscarded), discarded));
  return report;
}

AuditReport StructureAuditor::AuditAll(const ResourceStore& store,
                                       const SuspensionQueue& queue,
                                       const sim::EventQueue& events,
                                       Tick now) {
  AuditReport report = AuditStore(store);
  AuditReport sus = AuditSuspensionQueue(queue);
  AuditReport evq = AuditEventQueue(events, now);
  report.violations.insert(report.violations.end(),
                           std::make_move_iterator(sus.violations.begin()),
                           std::make_move_iterator(sus.violations.end()));
  report.violations.insert(report.violations.end(),
                           std::make_move_iterator(evq.violations.begin()),
                           std::make_move_iterator(evq.violations.end()));
  return report;
}

}  // namespace dreamsim::analysis
