// StructureAuditor: from-first-principles validation of every intrusive
// scheduler structure (DESIGN.md §12).
//
// The paper's Fig. 3 lists and their shadow representations (StoreIndex,
// SusQueueIndex, fault visibility) are all *derived* state: the nodes'
// config-task-pair slots and the suspension FIFO are the ground truth.
// Every past bug class in this repo — double-armed fault chains, stacked
// renewal events, index/scan divergence — was a silent divergence between
// the two that only a differential test happened to catch. The auditor
// closes that gap: it walks the primary state, independently reconstructs
// what every derived structure *must* contain, and diffs that against the
// live structures, reporting each divergence with a human-readable path
// (node id, config, family, list position).
//
// It deliberately does NOT reuse ResourceStore::ValidateConsistency(),
// StoreIndex::Validate() or SusQueueIndex::Validate(): those are
// self-checks maintained next to the code they check, and a bug pattern
// that fools the structure can fool its sibling validator. The auditor is
// an independent reimplementation of the membership rules from the
// documented invariants.
//
// Read-only by construction: every entry point takes const references and
// never charges the WorkloadMeter (an audit is tooling, not scheduler
// effort the paper's Table I would count).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "resource/store.hpp"
#include "resource/suspension_queue.hpp"
#include "resource/task.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace dreamsim::analysis {

/// One divergence between a live structure and reconstructed ground truth.
struct Violation {
  /// Invariant slug from the DESIGN.md §12 catalogue (e.g. "fig3.idle-list",
  /// "fault.visibility", "susidx.bucket").
  std::string invariant;
  /// Human-readable location: node id, config, family, list position.
  std::string path;
  /// What diverged (expected vs actual).
  std::string detail;
};

/// The outcome of one audit pass. Violations appear in structure-walk
/// order, so the first entry is the divergence closest to the ground truth
/// (the most useful one to debug from).
struct AuditReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// Multi-line rendering: one "[slug] path: detail" line per violation,
  /// capped at `max_lines` (docs/formats.md "Auditor violation report").
  [[nodiscard]] std::string Render(std::size_t max_lines = 8) const;
};

/// Stateless audit passes over the scheduler structures. All entry points
/// are static; the class exists to be befriended by the audited structures.
class StructureAuditor {
 public:
  /// Audits the Fig. 3 lists, the blank list, the Eq. 4 area accounting,
  /// the fault-visibility rules, and (when enabled) the StoreIndex mirror
  /// and the sharded kernel's partition + per-shard indexes.
  [[nodiscard]] static AuditReport AuditStore(
      const resource::ResourceStore& store);

  /// Audits the suspension FIFO, its attribute table, and (when enabled)
  /// the SusQueueIndex seq/Fenwick/bucket/group/treap structures.
  [[nodiscard]] static AuditReport AuditSuspensionQueue(
      const resource::SuspensionQueue& queue);

  /// Audits the pending-event set: live-action/heap-entry correspondence,
  /// sequence bounds, ordering, and that no live event lies before `now`.
  [[nodiscard]] static AuditReport AuditEventQueue(
      const sim::EventQueue& queue, Tick now);

  /// All three passes, concatenated in the order above.
  [[nodiscard]] static AuditReport AuditAll(
      const resource::ResourceStore& store,
      const resource::SuspensionQueue& queue, const sim::EventQueue& events,
      Tick now);

  /// Cross-checks the live metrics registry against the structures it
  /// observes ("metrics.conservation"): event-queue flow conservation,
  /// suspension-queue depth, fault-gauge vs failed nodes, and terminal task
  /// counters vs TaskStore states. Valid only while the registry covers
  /// exactly the current run (enabled before the run, Reset() at its
  /// start); returns an empty report when the registry is disabled.
  [[nodiscard]] static AuditReport AuditMetrics(
      const resource::ResourceStore& store,
      const resource::SuspensionQueue& queue, const sim::EventQueue& events,
      const resource::TaskStore& tasks);

 private:
  static void AuditEntryLists(const resource::ResourceStore& store,
                              AuditReport& report);
  static void AuditAreaAccounting(const resource::ResourceStore& store,
                                  AuditReport& report);
  static void AuditBlankList(const resource::ResourceStore& store,
                             AuditReport& report);
  static void AuditFaultVisibility(const resource::ResourceStore& store,
                                   AuditReport& report);
  static void AuditStoreIndex(const resource::ResourceStore& store,
                              AuditReport& report);
  static void AuditShards(const resource::ResourceStore& store,
                          AuditReport& report);
  static void AuditSusIndex(const resource::SuspensionQueue& queue,
                            AuditReport& report);
};

}  // namespace dreamsim::analysis
