// Minimal declarative command-line parser for the example and benchmark
// binaries: --name=value / --name value / boolean --flag, with typed
// accessors, defaults, and generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim {

/// Declarative flag set. Register options, then Parse(argc, argv).
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers an option with a default value (shown in --help).
  void AddString(std::string name, std::string default_value,
                 std::string help);
  void AddInt(std::string name, std::int64_t default_value, std::string help);
  void AddDouble(std::string name, double default_value, std::string help);
  void AddBool(std::string name, bool default_value, std::string help);

  /// Parses argv. Returns false (and fills error()) on unknown or malformed
  /// options. `--help` sets help_requested() and returns true.
  [[nodiscard]] bool Parse(int argc, const char* const* argv);

  [[nodiscard]] std::string GetString(std::string_view name) const;
  [[nodiscard]] std::int64_t GetInt(std::string_view name) const;
  [[nodiscard]] double GetDouble(std::string_view name) const;
  [[nodiscard]] bool GetBool(std::string_view name) const;

  /// True when the user passed the option explicitly (any type); false for
  /// defaults. Throws std::logic_error on unregistered names.
  [[nodiscard]] bool WasSet(std::string_view name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Renders usage text for --help.
  [[nodiscard]] std::string HelpText() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Option {
    Type type;
    std::string default_value;
    std::string value;
    std::string help;
    bool set = false;
  };

  [[nodiscard]] const Option& Require(std::string_view name, Type type) const;
  [[nodiscard]] bool Assign(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace dreamsim
