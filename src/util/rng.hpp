// Random number generation for DReAMSim.
//
// Reproduces the paper's RNG class (Sec. IV-C): a core 32-bit generator in
// the style of Marsaglia's KISS, normal variates via the Ziggurat method
// [Marsaglia & Tsang, J. Stat. Software 2000], gamma variates via
// [Marsaglia & Tsang, ACM TOMS 2000], and Poisson / binomial / multinomial /
// uniform distributions layered on top. All simulator randomness flows from
// one seeded instance, so a (seed, configuration) pair fully determines a
// simulation run.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dreamsim {

/// Deterministic pseudo-random generator with the distribution suite the
/// DReAMSim framework needs. Not thread-safe by design: each simulation owns
/// exactly one Rng (determinism beats concurrency here); parallel sweeps use
/// one Rng per simulation instance.
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Core generator: uniformly distributed 32-bit word (KISS combination of
  /// a multiply-with-carry, a xorshift, and a linear congruential stage).
  [[nodiscard]] std::uint32_t rand_int32();

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Standard normal variate via the 128-layer Ziggurat method.
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Exponential variate with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double lambda);

  /// Gamma variate with shape `alpha` > 0 and scale `theta` > 0, via the
  /// Marsaglia-Tsang squeeze method (with the alpha < 1 boost).
  [[nodiscard]] double gamma(double alpha, double theta = 1.0);

  /// Poisson variate with mean `lambda` >= 0. Uses Knuth's product method
  /// for small means and gamma-based recursive splitting for large ones.
  [[nodiscard]] int poisson(double lambda);

  /// Binomial variate: number of successes in `n` trials of probability `p`.
  [[nodiscard]] int binomial(double p, int n);

  /// Beta variate with shape parameters a, b > 0 (ratio of gammas).
  [[nodiscard]] double beta(double a, double b);

  /// Multinomial draw: distributes `n` trials over `probabilities` (which
  /// must sum to ~1). Returns one count per category.
  [[nodiscard]] std::vector<int> multinomial(unsigned n,
                                             std::span<const double> probabilities);

  /// Selects an index in [0, weights.size()) with chance proportional to its
  /// weight. Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

 private:
  // KISS state.
  std::uint32_t mwc_upper_;
  std::uint32_t mwc_lower_;
  std::uint32_t shr3_;
  std::uint32_t congruential_;

  // Ziggurat tables for the standard normal (computed once per process).
  struct ZigguratTables {
    std::array<std::uint32_t, 128> k;
    std::array<double, 128> w;
    std::array<double, 128> f;
  };
  static const ZigguratTables& ziggurat_tables();

  [[nodiscard]] double normal_tail(double xmin);
};

/// Derives an independent child seed from a master seed and a stream index
/// (SplitMix64 finalizer); used to give each simulation in a sweep its own
/// deterministic stream.
[[nodiscard]] std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t stream);

}  // namespace dreamsim
