// Annotated synchronization primitives (DESIGN.md §17).
//
// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
// analysis cannot check code that locks it directly. These thin wrappers
// add the capability annotations (util/thread_annotations.hpp) while
// delegating every operation to the standard primitives — no behavior
// change, no extra state on the lock path.
//
// ThreadRole is the *phantom* capability for single-writer structures that
// cross threads without a lock: the sharded kernel's broadcast state, the
// tracer/sampler buffers, the metrics cell bank. A role is never "locked";
// the owning thread asserts it at each entry point (AssertHeld), which
// tells the analysis the capability is live and — in debug builds — checks
// at runtime that every asserting thread is the same one.
#pragma once

#include <condition_variable>
#include <mutex>

#ifndef NDEBUG
#include <atomic>
#include <cstdlib>
#include <thread>
#endif

#include "util/thread_annotations.hpp"

namespace dreamsim::util {

class CondVar;

/// std::mutex with capability annotations. Lock through MutexLock (scoped)
/// or lock()/unlock() when a scope cannot express the critical section.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits on the native handle (adopt/release)
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape) the analysis understands.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Wait() requires the mutex held and
/// returns with it held (the wakeup-side relock happens inside, invisible
/// to the analysis — exactly the std::condition_variable contract). The
/// predicate loop stays at the call site so guarded reads are checked
/// there:
///   while (!ready_) cv_.Wait(mut_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper keeps it afterwards.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Phantom capability for single-thread ownership ("the simulation thread
/// owns this structure's mutable state"). Guard members with
/// GUARDED_BY(role_), mark internal helpers REQUIRES(role_), and have each
/// public entry point assert the role:
///
///   class Tracer {
///     void OnEvent(...) { role_.AssertHeld(); pending_.push_back(...); }
///     util::ThreadRole role_;
///     std::vector<Event> pending_ GUARDED_BY(role_);
///   };
///
/// Compile time: any new code path that touches guarded state without
/// asserting or requiring the role fails under -Werror=thread-safety.
/// Run time (debug builds): the first AssertHeld() binds the role to the
/// calling thread and every later assert must come from that same thread,
/// so a role asserted from two threads aborts even without Clang.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unbound
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first assertion binds the role to this thread
    }
    if (expected != self) std::abort();  // cross-thread role violation
#endif
  }

  /// Hands the role to the next thread that asserts it. Only legal at a
  /// quiescent point (no concurrent asserts possible) — e.g. between runs
  /// when a structure is reused from a different driver thread.
  void Release() const {
#ifndef NDEBUG
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

 private:
#ifndef NDEBUG
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace dreamsim::util
