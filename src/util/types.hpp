// Core vocabulary types shared by every DReAMSim module.
//
// Quantities that the paper measures in simulator units — time ticks, area
// units, search steps — are fixed-width integer aliases so arithmetic stays
// natural. Identifiers (nodes, configurations, tasks, processor types) are
// strong types so they cannot be mixed up at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace dreamsim {

/// Simulated time in ticks ("a unit of time on a target system", Sec. IV-C).
using Tick = std::int64_t;

/// Reconfigurable area in abstract area units (e.g. slices), Table II.
using Area = std::int64_t;

/// Search steps: "a basic unit of exploration to search a memory location".
using Steps = std::uint64_t;

/// Bitstream size in bytes (the BSize field of Eq. 2).
using Bytes = std::int64_t;

/// Sentinel for "no tick" (unset timestamps).
inline constexpr Tick kNoTick = std::numeric_limits<Tick>::min();

namespace detail {

/// CRTP strong identifier: a 32-bit index plus an invalid sentinel.
/// Tag disambiguates (NodeId vs ConfigId etc.); no implicit conversions.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalidValue =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalidValue; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = kInvalidValue;
};

}  // namespace detail

struct NodeTag {};
struct ConfigTag {};
struct TaskTag {};
struct PtypeTag {};
struct FamilyTag {};

/// Identifies a reconfigurable node (Node_i of Eq. 1).
using NodeId = detail::StrongId<NodeTag>;
/// Identifies a processor configuration (C_i of Eq. 2).
using ConfigId = detail::StrongId<ConfigTag>;
/// Identifies an application task (Task_i of Eq. 3).
using TaskId = detail::StrongId<TaskTag>;
/// Identifies a processor type (P_type of Eq. 2).
using PtypeId = detail::StrongId<PtypeTag>;
/// Identifies a device family (the `family` field of Eq. 1).
using FamilyId = detail::StrongId<FamilyTag>;

}  // namespace dreamsim

namespace std {

template <typename Tag>
struct hash<dreamsim::detail::StrongId<Tag>> {
  size_t operator()(dreamsim::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

}  // namespace std
