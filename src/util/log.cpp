#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dreamsim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
util::Mutex g_sink_mutex;
/// The sink is a function-local static (first-use construction), so the
/// guarded_by contract lives on the accessor: callers must hold the sink
/// mutex for the returned reference's whole use.
Log::Sink& SinkStorage() REQUIRES(g_sink_mutex) {
  static Log::Sink sink;  // empty => default stderr sink
  return sink;
}

void DefaultSink(LogLevel level, std::string_view message) {
  std::cerr << '[' << ToString(level) << "] " << message << '\n';
}

}  // namespace

std::string_view ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::SetLevel(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(); }

void Log::SetSink(Sink sink) {
  const util::MutexLock lock(g_sink_mutex);
  SinkStorage() = std::move(sink);
}

void Log::Write(LogLevel level, std::string_view message) {
  if (level < Log::level()) return;
  const util::MutexLock lock(g_sink_mutex);
  if (const Sink& sink = SinkStorage()) {
    sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

}  // namespace dreamsim
