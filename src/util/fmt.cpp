#include "util/fmt.hpp"

#include <charconv>

namespace dreamsim::fmt_detail {
namespace {

/// Applies an alignment spec like ":<12" or ":>8" to `value`.
std::string ApplySpec(std::string_view spec, const std::string& value) {
  if (spec.size() < 2 || spec[0] != ':') return value;
  const char align = spec[1];
  if (align != '<' && align != '>') return value;
  std::size_t width = 0;
  const char* first = spec.data() + 2;
  const char* last = spec.data() + spec.size();
  if (std::from_chars(first, last, width).ec != std::errc{}) return value;
  if (value.size() >= width) return value;
  const std::string pad(width - value.size(), ' ');
  return align == '<' ? value + pad : pad + value;
}

}  // namespace

std::string FormatImpl(std::string_view fmt, const std::string* args,
                       std::size_t arg_count) {
  std::string out;
  out.reserve(fmt.size() + 16 * arg_count);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const auto close = fmt.find('}', i + 1);
      if (close == std::string_view::npos) {
        out.push_back(c);  // malformed: emit literally
        continue;
      }
      const std::string_view spec = fmt.substr(i + 1, close - i - 1);
      if (next_arg < arg_count) {
        out += ApplySpec(spec, args[next_arg]);
        ++next_arg;
      } else {
        out.push_back('{');
        out.append(spec);
        out.push_back('}');
      }
      i = close;
      continue;
    }
    if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      ++i;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace dreamsim::fmt_detail
