// Minimal expected<T, E> for C++20 (std::expected arrives in C++23).
//
// Used for fallible operations whose failure is part of normal control flow
// (e.g. "no node with sufficient area"), where exceptions would be noise.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dreamsim {

/// Wrapper distinguishing an error value from a success value of the
/// same type. Construct via `Unexpected{err}` or the `Err()` helper.
template <typename E>
struct Unexpected {
  E value;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Convenience factory: `return Err(SchedError::kNoCapacity);`
template <typename E>
[[nodiscard]] constexpr Unexpected<std::decay_t<E>> Err(E&& e) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(e)};
}

/// A value of type T or an error of type E. API mirrors the C++23
/// std::expected subset this project needs.
template <typename T, typename E>
class Expected {
 public:
  using value_type = T;
  using error_type = E;

  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> err)
      : storage_(std::in_place_index<1>, std::move(err.value)) {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  [[nodiscard]] explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] E& error() & {
    assert(!has_value());
    return std::get<1>(storage_);
  }
  [[nodiscard]] const E& error() const& {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

  /// Returns the contained value or `fallback` when holding an error.
  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return has_value() ? value() : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace dreamsim
