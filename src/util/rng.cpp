#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dreamsim {
namespace {

constexpr double kTwoPow32 = 4294967296.0;  // 2^32
constexpr double kZigguratR = 3.442619855899;  // rightmost layer x-coordinate

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t DeriveSeed(std::uint64_t master, std::uint64_t stream) {
  std::uint64_t state = master ^ (stream * 0xD6E8FEB86659FD93ULL);
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the 64-bit seed into the four KISS words, rejecting the rare
  // all-zero states each sub-generator cannot leave.
  std::uint64_t state = seed;
  auto next_word = [&state](std::uint32_t forbidden) {
    std::uint32_t w;
    do {
      w = static_cast<std::uint32_t>(SplitMix64(state));
    } while (w == forbidden);
    return w;
  };
  mwc_upper_ = next_word(0);
  mwc_lower_ = next_word(0);
  shr3_ = next_word(0);
  congruential_ = static_cast<std::uint32_t>(SplitMix64(state));  // any value ok
}

std::uint32_t Rng::rand_int32() {
  // Marsaglia KISS: multiply-with-carry pair, xorshift, and congruential.
  mwc_upper_ = 36969u * (mwc_upper_ & 65535u) + (mwc_upper_ >> 16);
  mwc_lower_ = 18000u * (mwc_lower_ & 65535u) + (mwc_lower_ >> 16);
  const std::uint32_t mwc = (mwc_upper_ << 16) + mwc_lower_;

  shr3_ ^= shr3_ << 13;
  shr3_ ^= shr3_ >> 17;
  shr3_ ^= shr3_ << 5;

  congruential_ = 69069u * congruential_ + 1234567u;

  return (mwc ^ congruential_) + shr3_;
}

double Rng::uniform() {
  // 32 bits of mantissa entropy; strictly inside [0, 1).
  return (static_cast<double>(rand_int32()) + 0.5) / kTwoPow32;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    const std::uint64_t word =
        (static_cast<std::uint64_t>(rand_int32()) << 32) | rand_int32();
    return static_cast<std::int64_t>(word);
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t word;
  do {
    word = (static_cast<std::uint64_t>(rand_int32()) << 32) | rand_int32();
  } while (word >= limit);
  return lo + static_cast<std::int64_t>(word % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

const Rng::ZigguratTables& Rng::ziggurat_tables() {
  // Built once; the construction follows Marsaglia & Tsang (2000).
  static const ZigguratTables tables = [] {
    ZigguratTables t{};
    const double v = 9.91256303526217e-3;  // area of each layer
    double dn = kZigguratR;
    double tn = kZigguratR;
    const double exp_half_r2 = std::exp(-0.5 * dn * dn);
    const double m = 2147483648.0;  // 2^31

    double q = v / exp_half_r2;
    t.k[0] = static_cast<std::uint32_t>((dn / q) * m);
    t.k[1] = 0;
    t.w[0] = q / m;
    t.w[127] = dn / m;
    t.f[0] = 1.0;
    t.f[127] = exp_half_r2;
    for (std::size_t i = 126; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(v / dn + std::exp(-0.5 * dn * dn)));
      t.k[i + 1] = static_cast<std::uint32_t>((dn / tn) * m);
      tn = dn;
      t.f[i] = std::exp(-0.5 * dn * dn);
      t.w[i] = dn / m;
    }
    return t;
  }();
  return tables;
}

double Rng::normal_tail(double xmin) {
  // Marsaglia's tail method for |x| > R.
  double x;
  double y;
  do {
    x = -std::log(uniform()) / xmin;
    y = -std::log(uniform());
  } while (y + y < x * x);
  return xmin + x;
}

double Rng::normal() {
  const ZigguratTables& t = ziggurat_tables();
  for (;;) {
    const auto hz = static_cast<std::int32_t>(rand_int32());
    const std::uint32_t iz = static_cast<std::uint32_t>(hz) & 127u;
    if (static_cast<std::uint32_t>(hz < 0 ? -hz : hz) < t.k[iz]) {
      return hz * t.w[iz];
    }
    // Slow path: base layer tail or wedge rejection.
    if (iz == 0) {
      const double tail = normal_tail(kZigguratR);
      return hz > 0 ? tail : -tail;
    }
    const double x = hz * t.w[iz];
    if (t.f[iz] + uniform() * (t.f[iz - 1] - t.f[iz]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
  }
}

double Rng::normal(double mean, double sigma) {
  assert(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  return -std::log(uniform()) / lambda;
}

double Rng::gamma(double alpha, double theta) {
  if (alpha <= 0.0 || theta <= 0.0) {
    throw std::invalid_argument("Rng::gamma requires alpha > 0 and theta > 0");
  }
  if (alpha < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double boost = std::pow(uniform(), 1.0 / alpha);
    return gamma(alpha + 1.0, theta) * boost;
  }
  // Marsaglia-Tsang squeeze.
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return theta * d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return theta * d * v;
    }
  }
}

int Rng::poisson(double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("Rng::poisson requires lambda >= 0");
  }
  int result = 0;
  // Ahrens-Dieter reduction: peel off large chunks with gamma jumps, then
  // finish the remainder with Knuth's product method.
  while (lambda > 12.0) {
    const auto m = static_cast<int>(lambda * 7.0 / 8.0);
    const double g = gamma(static_cast<double>(m));
    if (g > lambda) {
      // The m-th arrival falls beyond the window: count the earlier ones.
      return result + binomial(lambda / g, m - 1);
    }
    result += m;
    lambda -= g;
  }
  const double limit = std::exp(-lambda);
  double product = uniform();
  while (product > limit) {
    product *= uniform();
    ++result;
  }
  return result;
}

int Rng::binomial(double p, int n) {
  if (n < 0 || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Rng::binomial requires n >= 0 and p in [0,1]");
  }
  int successes = 0;
  // Recursive beta splitting keeps the loop count O(log n) for large n.
  while (n > 30) {
    const int a = 1 + n / 2;
    const double b = beta(static_cast<double>(a), static_cast<double>(n + 1 - a));
    if (b <= p) {
      successes += a;
      n -= a;
      p = (p - b) / (1.0 - b);
    } else {
      n = a - 1;
      p = p / b;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (uniform() < p) ++successes;
  }
  return successes;
}

double Rng::beta(double a, double b) {
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

std::vector<int> Rng::multinomial(unsigned n,
                                  std::span<const double> probabilities) {
  std::vector<int> counts(probabilities.size(), 0);
  double remaining_probability = 1.0;
  auto remaining_trials = static_cast<int>(n);
  for (std::size_t i = 0; i + 1 < probabilities.size(); ++i) {
    if (remaining_trials == 0) break;
    const double conditional =
        remaining_probability > 0.0
            ? std::min(1.0, probabilities[i] / remaining_probability)
            : 0.0;
    counts[i] = binomial(conditional, remaining_trials);
    remaining_trials -= counts[i];
    remaining_probability -= probabilities[i];
  }
  if (!counts.empty()) counts.back() = remaining_trials;
  return counts;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "Rng::weighted_index requires a positive total weight");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bucket
}

}  // namespace dreamsim
