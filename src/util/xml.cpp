#include "util/xml.hpp"

#include "util/fmt.hpp"
#include <ostream>
#include <stdexcept>

namespace dreamsim {

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

XmlWriter::XmlWriter(std::ostream& out, bool emit_declaration) : out_(out) {
  if (emit_declaration) {
    out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  }
}

XmlWriter::~XmlWriter() { Finish(); }

void XmlWriter::CloseStartTagIfNeeded() {
  if (start_tag_open_) {
    out_ << ">\n";
    start_tag_open_ = false;
  }
}

void XmlWriter::Indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

XmlWriter& XmlWriter::Open(std::string_view name) {
  CloseStartTagIfNeeded();
  Indent();
  out_ << '<' << name;
  stack_.emplace_back(name);
  start_tag_open_ = true;
  last_was_text_ = false;
  return *this;
}

XmlWriter& XmlWriter::Attribute(std::string_view name, std::string_view value) {
  if (!start_tag_open_) {
    throw std::logic_error("Attribute after child content of element");
  }
  out_ << ' ' << name << "=\"" << XmlEscape(value) << '"';
  return *this;
}

XmlWriter& XmlWriter::Attribute(std::string_view name, std::int64_t value) {
  return Attribute(name, Format("{}", value));
}

XmlWriter& XmlWriter::Attribute(std::string_view name, std::uint64_t value) {
  return Attribute(name, Format("{}", value));
}

XmlWriter& XmlWriter::Attribute(std::string_view name, double value) {
  return Attribute(name, Format("{}", value));
}

XmlWriter& XmlWriter::Element(std::string_view name, std::string_view text) {
  CloseStartTagIfNeeded();
  Indent();
  out_ << '<' << name << '>' << XmlEscape(text) << "</" << name << ">\n";
  return *this;
}

XmlWriter& XmlWriter::Element(std::string_view name, std::int64_t value) {
  return Element(name, Format("{}", value));
}

XmlWriter& XmlWriter::Element(std::string_view name, std::uint64_t value) {
  return Element(name, Format("{}", value));
}

XmlWriter& XmlWriter::Element(std::string_view name, double value) {
  return Element(name, Format("{}", value));
}

XmlWriter& XmlWriter::Text(std::string_view text) {
  if (stack_.empty()) throw std::logic_error("Text outside any element");
  CloseStartTagIfNeeded();
  Indent();
  out_ << XmlEscape(text) << '\n';
  last_was_text_ = true;
  return *this;
}

XmlWriter& XmlWriter::Close() {
  if (stack_.empty()) throw std::logic_error("Close without open element");
  if (start_tag_open_) {
    // Element had no children: emit a self-closing tag.
    out_ << "/>\n";
    start_tag_open_ = false;
    stack_.pop_back();
    return *this;
  }
  const std::string name = stack_.back();
  stack_.pop_back();
  Indent();
  out_ << "</" << name << ">\n";
  last_was_text_ = false;
  return *this;
}

void XmlWriter::Finish() {
  while (!stack_.empty()) Close();
}

}  // namespace dreamsim
