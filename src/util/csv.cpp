#include "util/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/fmt.hpp"

namespace dreamsim {

std::string CsvEscape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header,
                     std::size_t buffer_bytes)
    : out_(out), columns_(header.size()), buffer_bytes_(buffer_bytes) {
  if (columns_ == 0) throw std::invalid_argument("CSV header must be non-empty");
  buffer_.reserve(buffer_bytes_);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << CsvEscape(header[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { Flush(); }

void CsvWriter::Flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

CsvWriter& CsvWriter::BeginRow() {
  if (in_row_) throw std::logic_error("BeginRow called inside an open row");
  in_row_ = true;
  fields_in_row_ = 0;
  row_.clear();
  return *this;
}

void CsvWriter::Emit(std::string_view raw) {
  if (!in_row_) throw std::logic_error("Field written outside a row");
  if (fields_in_row_ >= columns_) {
    throw std::logic_error("row wider than header");
  }
  if (fields_in_row_ > 0) row_.push_back(',');
  row_.append(raw);
  ++fields_in_row_;
}

CsvWriter& CsvWriter::Field(std::string_view value) {
  Emit(CsvEscape(value));
  return *this;
}

CsvWriter& CsvWriter::Field(std::int64_t value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  Emit(std::string_view(buf, static_cast<std::size_t>(result.ptr - buf)));
  return *this;
}

CsvWriter& CsvWriter::Field(std::uint64_t value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  Emit(std::string_view(buf, static_cast<std::size_t>(result.ptr - buf)));
  return *this;
}

CsvWriter& CsvWriter::Field(double value) {
  Emit(Format("{}", value));
  return *this;
}

void CsvWriter::EndRow() {
  if (!in_row_) throw std::logic_error("EndRow without BeginRow");
  if (fields_in_row_ != columns_) {
    throw std::logic_error("row narrower than header");
  }
  row_.push_back('\n');
  if (buffer_bytes_ == 0) {
    out_.write(row_.data(), static_cast<std::streamsize>(row_.size()));
  } else {
    buffer_.append(row_);
    if (buffer_.size() >= buffer_bytes_) Flush();
  }
  in_row_ = false;
  ++rows_;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  BeginRow();
  for (const auto& cell : cells) Field(cell);
  EndRow();
}

std::vector<std::string> CsvParseLine(std::string_view line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

std::size_t CsvTable::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

CsvTable CsvRead(std::istream& in) {
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = CsvParseLine(line);
    if (first) {
      table.header = std::move(cells);
      first = false;
    } else {
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

}  // namespace dreamsim
