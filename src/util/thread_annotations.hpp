// Clang thread-safety annotation shim (DESIGN.md §17).
//
// Wraps Clang's `-Wthread-safety` attribute set so the concurrency
// contracts that TSan and the differential suites check at runtime are also
// enforced at compile time: which mutex guards which member, which
// capability a function requires, and which scopes acquire/release. Under
// any compiler without the attributes (GCC) every macro expands to nothing,
// so the annotated tree builds everywhere; the dedicated CI job compiles
// with Clang and `-Werror=thread-safety` (see cmake/ThreadSafety.cmake,
// which also proves the annotations are load-bearing with a negative
// compile check).
//
// Use the annotated primitives in util/sync.hpp (util::Mutex,
// util::MutexLock, util::CondVar, util::ThreadRole) — std::mutex under
// libstdc++ carries no capability attributes, so the analysis cannot see
// plain standard-library locks.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DREAMSIM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DREAMSIM_THREAD_ANNOTATION
#define DREAMSIM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lock, or a phantom role) the analysis
/// tracks. `x` names the capability kind in diagnostics ("mutex", "role").
#define CAPABILITY(x) DREAMSIM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define SCOPED_CAPABILITY DREAMSIM_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member is protected by the given capability: every read
/// or write must happen with the capability held.
#define GUARDED_BY(x) DREAMSIM_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY for the data a pointer points to.
#define PT_GUARDED_BY(x) DREAMSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the capability; it is
/// still held on return.
#define REQUIRES(...) \
  DREAMSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capability (and must be called without it).
#define ACQUIRE(...) \
  DREAMSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capability (and must be called with it).
#define RELEASE(...) \
  DREAMSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability when it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  DREAMSIM_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// The function must be called *without* the capability (deadlock guard).
#define EXCLUDES(...) DREAMSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it —
/// the bridge for facts the analysis cannot see (a thread role established
/// at thread entry, a lock handed across a queue). util::ThreadRole backs
/// this with a debug-build runtime owner check so asserted roles stay
/// honest under plain ctest too.
#define ASSERT_CAPABILITY(x) DREAMSIM_THREAD_ANNOTATION(assert_capability(x))

/// Returns the capability object guarding the returned data.
#define RETURN_CAPABILITY(x) DREAMSIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining which invariant makes the unchecked access safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  DREAMSIM_THREAD_ANNOTATION(no_thread_safety_analysis)
