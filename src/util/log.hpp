// Lightweight leveled logger. The simulator core logs scheduling decisions at
// Debug level and run summaries at Info; benchmarks silence everything below
// Warning. A process-global sink keeps call sites terse without threading a
// logger through every constructor.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "util/fmt.hpp"

namespace dreamsim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] std::string_view ToString(LogLevel level);

/// Process-global logging configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Minimum level that reaches the sink (default: kWarning, so library
  /// users opt in to chatter).
  static void SetLevel(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Replaces the output sink (default writes "[LEVEL] message" to stderr).
  /// Passing nullptr restores the default sink.
  static void SetSink(Sink sink);

  /// Emits a preformatted message if `level` passes the threshold.
  static void Write(LogLevel level, std::string_view message);

  /// Format-style logging: Log::Message(LogLevel::kInfo, "x={}", x).
  /// Arguments are not rendered when the level is filtered out.
  template <typename... Args>
  static void Message(LogLevel level, std::string_view fmt,
                      const Args&... args) {
    if (level < Log::level()) return;
    Write(level, Format(fmt, args...));
  }
};

#define DREAMSIM_LOG(level, ...) \
  ::dreamsim::Log::Message((level), __VA_ARGS__)

}  // namespace dreamsim
