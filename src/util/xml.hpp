// XML writer backing the paper's "XML simulation report generator" (output
// subsystem, Sec. III). Produces well-formed, indented documents; attribute
// and text content are escaped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim {

/// Streaming XML document writer.
///
/// Usage:
///   XmlWriter xml(out);
///   xml.Open("report");
///   xml.Attribute("version", "1");
///   xml.Element("metric", "42");   // <metric>42</metric>
///   xml.Close();                   // </report>
class XmlWriter {
 public:
  explicit XmlWriter(std::ostream& out, bool emit_declaration = true);
  ~XmlWriter();

  XmlWriter(const XmlWriter&) = delete;
  XmlWriter& operator=(const XmlWriter&) = delete;

  /// Opens an element; it stays open until the matching Close().
  XmlWriter& Open(std::string_view name);

  /// Adds an attribute to the most recently opened element. Only legal
  /// before any child content has been written.
  XmlWriter& Attribute(std::string_view name, std::string_view value);
  XmlWriter& Attribute(std::string_view name, std::int64_t value);
  XmlWriter& Attribute(std::string_view name, std::uint64_t value);
  XmlWriter& Attribute(std::string_view name, double value);

  /// Writes a leaf element with text content.
  XmlWriter& Element(std::string_view name, std::string_view text);
  XmlWriter& Element(std::string_view name, std::int64_t value);
  XmlWriter& Element(std::string_view name, std::uint64_t value);
  XmlWriter& Element(std::string_view name, double value);

  /// Writes escaped text content inside the current element.
  XmlWriter& Text(std::string_view text);

  /// Closes the most recently opened element.
  XmlWriter& Close();

  /// Closes all open elements (also done by the destructor).
  void Finish();

  [[nodiscard]] std::size_t depth() const { return stack_.size(); }

 private:
  void CloseStartTagIfNeeded();
  void Indent();

  std::ostream& out_;
  std::vector<std::string> stack_;
  bool start_tag_open_ = false;
  bool last_was_text_ = false;
};

/// Escapes &, <, >, ", ' for use in XML text and attribute values.
[[nodiscard]] std::string XmlEscape(std::string_view raw);

}  // namespace dreamsim
