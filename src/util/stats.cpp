#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dreamsim {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ == 0 ? 0.0 : min_; }

double OnlineStats::max() const { return count_ == 0 ? 0.0 : max_; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram requires lo < hi and bins > 0");
  }
  bin_width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((x - lo_) / bin_width_);
  index = std::min(index, counts_.size() - 1);  // guards fp edge at hi_
  ++counts_[index];
}

double Histogram::bin_lower(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = underflow_;
  if (seen > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bin_lower(i) + 0.5 * bin_width_;
  }
  return hi_;
}

std::string Histogram::ToAscii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << '[' << bin_lower(i) << ", " << bin_lower(i + 1) << ") "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

void TimeWeightedValue::Set(Tick now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
    last_change_ = now;
    current_ = value;
    return;
  }
  assert(now >= last_change_);
  integral_ += current_ * static_cast<double>(now - last_change_);
  last_change_ = now;
  current_ = value;
}

double TimeWeightedValue::IntegralUntil(Tick now) const {
  if (!started_) return 0.0;
  assert(now >= last_change_);
  return integral_ + current_ * static_cast<double>(now - last_change_);
}

double TimeWeightedValue::AverageUntil(Tick now) const {
  if (!started_ || now <= start_) return current_;
  return IntegralUntil(now) / static_cast<double>(now - start_);
}

}  // namespace dreamsim
