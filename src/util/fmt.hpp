// Minimal string formatting (std::format is unavailable on GCC 12).
//
// Supports sequential `{}` placeholders, `{{`/`}}` escapes, and alignment
// specs `{:<N}` / `{:>N}` (pad with spaces to width N). Arguments are
// stringified via operator<<; formatting is locale-independent for the
// arithmetic types the simulator emits.
#pragma once

#include <array>
#include <charconv>
#include <sstream>
#include <string>
#include <string_view>

namespace dreamsim {
namespace fmt_detail {

/// Non-character integral types take a std::to_chars fast path below; the
/// digits are identical to the classic-locale operator<< rendering, minus
/// the per-argument ostringstream cost (the observability layer formats on
/// hot paths).
template <typename T>
inline constexpr bool kIsPlainInteger =
    std::is_integral_v<T> && !std::is_same_v<T, bool> &&
    !std::is_same_v<T, char> && !std::is_same_v<T, signed char> &&
    !std::is_same_v<T, unsigned char> && !std::is_same_v<T, wchar_t> &&
    !std::is_same_v<T, char16_t> && !std::is_same_v<T, char32_t>;

template <typename T>
std::string Stringify(const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    return std::string(std::string_view(value));
  } else if constexpr (kIsPlainInteger<T>) {
    char buf[24];
    const auto result = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, result.ptr);
  } else {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << value;
    return os.str();
  }
}

std::string FormatImpl(std::string_view fmt, const std::string* args,
                       std::size_t arg_count);

}  // namespace fmt_detail

/// Formats `fmt`, replacing each `{}` (or `{:<N}` / `{:>N}`) with the next
/// argument. Surplus placeholders render as `{}` literally; surplus
/// arguments are ignored. Never throws on malformed input (formatting is
/// used in error paths).
template <typename... Args>
[[nodiscard]] std::string Format(std::string_view fmt, const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return fmt_detail::FormatImpl(fmt, nullptr, 0);
  } else {
    const std::array<std::string, sizeof...(Args)> rendered{
        fmt_detail::Stringify(args)...};
    return fmt_detail::FormatImpl(fmt, rendered.data(), rendered.size());
  }
}

}  // namespace dreamsim
