#include "util/cli.hpp"

#include <charconv>
#include "util/fmt.hpp"
#include <stdexcept>

namespace dreamsim {
namespace {

bool ParseInt(const std::string& text, std::int64_t& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool ParseDouble(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseBool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::AddString(std::string name, std::string default_value,
                          std::string help) {
  options_[std::move(name)] =
      Option{Type::kString, default_value, default_value, std::move(help)};
}

void CliParser::AddInt(std::string name, std::int64_t default_value,
                       std::string help) {
  auto text = Format("{}", default_value);
  options_[std::move(name)] = Option{Type::kInt, text, text, std::move(help)};
}

void CliParser::AddDouble(std::string name, double default_value,
                          std::string help) {
  auto text = Format("{}", default_value);
  options_[std::move(name)] =
      Option{Type::kDouble, text, text, std::move(help)};
}

void CliParser::AddBool(std::string name, bool default_value,
                        std::string help) {
  const std::string text = default_value ? "true" : "false";
  options_[std::move(name)] = Option{Type::kBool, text, text, std::move(help)};
}

bool CliParser::Assign(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  if (it == options_.end()) {
    error_ = Format("unknown option --{}", name);
    return false;
  }
  Option& opt = it->second;
  // Validate eagerly so errors surface at parse time, not first access.
  switch (opt.type) {
    case Type::kInt: {
      std::int64_t v;
      if (!ParseInt(value, v)) {
        error_ = Format("option --{} expects an integer, got '{}'", name,
                             value);
        return false;
      }
      break;
    }
    case Type::kDouble: {
      double v;
      if (!ParseDouble(value, v)) {
        error_ = Format("option --{} expects a number, got '{}'", name,
                             value);
        return false;
      }
      break;
    }
    case Type::kBool: {
      bool v;
      if (!ParseBool(value, v)) {
        error_ = Format("option --{} expects a boolean, got '{}'", name,
                             value);
        return false;
      }
      break;
    }
    case Type::kString:
      break;
  }
  opt.value = value;
  opt.set = true;
  return true;
}

bool CliParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      if (!Assign(std::string(body.substr(0, eq)),
                  std::string(body.substr(eq + 1)))) {
        return false;
      }
      continue;
    }
    const std::string name(body);
    const auto it = options_.find(name);
    if (it == options_.end()) {
      error_ = Format("unknown option --{}", name);
      return false;
    }
    if (it->second.type == Type::kBool) {
      // A bare boolean flag means "true".
      it->second.value = "true";
      it->second.set = true;
      continue;
    }
    if (i + 1 >= argc) {
      error_ = Format("option --{} expects a value", name);
      return false;
    }
    if (!Assign(name, argv[++i])) return false;
  }
  return true;
}

const CliParser::Option& CliParser::Require(std::string_view name,
                                            Type type) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.type != type) {
    throw std::logic_error(
        Format("option --{} not registered with this type", name));
  }
  return it->second;
}

std::string CliParser::GetString(std::string_view name) const {
  return Require(name, Type::kString).value;
}

bool CliParser::WasSet(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::logic_error(Format("option --{} not registered", name));
  }
  return it->second.set;
}

std::int64_t CliParser::GetInt(std::string_view name) const {
  std::int64_t v = 0;
  ParseInt(Require(name, Type::kInt).value, v);
  return v;
}

double CliParser::GetDouble(std::string_view name) const {
  double v = 0.0;
  ParseDouble(Require(name, Type::kDouble).value, v);
  return v;
}

bool CliParser::GetBool(std::string_view name) const {
  bool v = false;
  ParseBool(Require(name, Type::kBool).value, v);
  return v;
}

std::string CliParser::HelpText() const {
  std::string out = description_ + "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += Format("  --{:<24} {} (default: {})\n", name, opt.help,
                       opt.default_value);
  }
  return out;
}

}  // namespace dreamsim
