// CSV writing/reading for experiment outputs and workload traces. RFC-4180
// quoting; numeric formatting is locale-independent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim {

/// Streams rows of a CSV table to any std::ostream. The column set is fixed
/// by the header; writing a row of a different width throws.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Starts a new row; follow with Field() calls and EndRow().
  CsvWriter& BeginRow();
  CsvWriter& Field(std::string_view value);
  CsvWriter& Field(std::int64_t value);
  CsvWriter& Field(std::uint64_t value);
  CsvWriter& Field(double value);
  void EndRow();

  /// Convenience: writes a full row of preformatted cells.
  void WriteRow(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void Emit(std::string_view raw);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t fields_in_row_ = 0;
  bool in_row_ = false;
  std::size_t rows_ = 0;
};

/// Quotes a cell per RFC 4180 when it contains a comma, quote, or newline.
[[nodiscard]] std::string CsvEscape(std::string_view cell);

/// Parses one CSV line into cells (handles quoted cells with embedded
/// commas/quotes; does not handle embedded newlines across lines).
[[nodiscard]] std::vector<std::string> CsvParseLine(std::string_view line);

/// Reads an entire CSV document: first row is the header.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos when absent.
  [[nodiscard]] std::size_t ColumnIndex(std::string_view name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

[[nodiscard]] CsvTable CsvRead(std::istream& in);

}  // namespace dreamsim
