// CSV writing/reading for experiment outputs and workload traces. RFC-4180
// quoting; numeric formatting is locale-independent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dreamsim {

/// Streams rows of a CSV table to any std::ostream. The column set is fixed
/// by the header; writing a row of a different width throws.
class CsvWriter {
 public:
  /// Writes the header row immediately. With `buffer_bytes` > 0, completed
  /// rows are batched into an internal buffer written out when it fills,
  /// on Flush(), and on destruction — one ostream call per batch instead
  /// of per row, for writers on hot paths (the obs timeline sampler emits
  /// tens of thousands of rows per run).
  CsvWriter(std::ostream& out, std::vector<std::string> header,
            std::size_t buffer_bytes = 0);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Starts a new row; follow with Field() calls and EndRow().
  CsvWriter& BeginRow();
  CsvWriter& Field(std::string_view value);
  CsvWriter& Field(std::int64_t value);
  CsvWriter& Field(std::uint64_t value);
  CsvWriter& Field(double value);
  void EndRow();

  /// Convenience: writes a full row of preformatted cells.
  void WriteRow(const std::vector<std::string>& cells);

  /// Writes any buffered rows to the output stream (no-op when
  /// unbuffered). Does not flush the stream itself.
  void Flush();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void Emit(std::string_view raw);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t fields_in_row_ = 0;
  bool in_row_ = false;
  std::size_t rows_ = 0;
  /// Rows are assembled here and written with one ostream call at EndRow —
  /// per-field ostream writes would pay a stream sentry each (CSV export
  /// sits on hot paths: the obs timeline sampler, workload traces).
  std::string row_;
  std::string buffer_;
  std::size_t buffer_bytes_;
};

/// Quotes a cell per RFC 4180 when it contains a comma, quote, or newline.
[[nodiscard]] std::string CsvEscape(std::string_view cell);

/// Parses one CSV line into cells (handles quoted cells with embedded
/// commas/quotes; does not handle embedded newlines across lines).
[[nodiscard]] std::vector<std::string> CsvParseLine(std::string_view line);

/// Reads an entire CSV document: first row is the header.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos when absent.
  [[nodiscard]] std::size_t ColumnIndex(std::string_view name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

[[nodiscard]] CsvTable CsvRead(std::istream& in);

}  // namespace dreamsim
