// Streaming statistics used by the metrics subsystem (Table I) and by the
// benchmark harnesses: Welford online moments, fixed-bin histograms, and a
// small time-series accumulator for time-weighted averages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dreamsim {

/// Numerically stable online mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (parallel-sweep reduction).
  void Merge(const OnlineStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Population variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lower(std::size_t i) const;
  /// Approximate p-quantile (q in [0,1]) from bin midpoints.
  [[nodiscard]] double quantile(double q) const;

  /// Renders a compact fixed-width ASCII bar chart (for report appendices).
  [[nodiscard]] std::string ToAscii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Integrates a piecewise-constant signal over simulated time, yielding
/// time-weighted averages (used by the kTimeWeighted waste accounting).
class TimeWeightedValue {
 public:
  /// Records that the signal takes `value` starting at tick `now`.
  /// Ticks must be non-decreasing across calls.
  void Set(Tick now, double value);

  /// Integral of the signal from the first Set() up to `now`.
  [[nodiscard]] double IntegralUntil(Tick now) const;

  /// Time-weighted mean over [first Set(), now]; 0 before any sample.
  [[nodiscard]] double AverageUntil(Tick now) const;

  [[nodiscard]] double current() const { return current_; }

 private:
  bool started_ = false;
  Tick start_ = 0;
  Tick last_change_ = 0;
  double current_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace dreamsim
