#include "ptype/ptype.hpp"

#include <algorithm>

namespace dreamsim::ptype {

std::string_view ToString(PtypeKind kind) {
  switch (kind) {
    case PtypeKind::kMultiplier: return "multiplier";
    case PtypeKind::kSystolicArray: return "systolic-array";
    case PtypeKind::kDspPipeline: return "dsp-pipeline";
    case PtypeKind::kSignalProcessor: return "signal-processor";
    case PtypeKind::kSoftCoreVliw: return "soft-core-vliw";
  }
  return "?";
}

std::int64_t Ptype::Param(std::string_view param_name,
                          std::int64_t fallback) const {
  for (const Parameter& p : params) {
    if (p.name == param_name) return p.value;
  }
  return fallback;
}

Area VliwArea(const VliwParams& p) {
  // Base decode/fetch control, per-issue dispatch, per-FU datapath and a
  // register-file term growing with issue width; all scaled by clusters.
  const std::int64_t per_cluster =
      120                                   // control + fetch
      + 40 * p.issue_width                  // dispatch lanes
      + 55 * p.alus                         // ALU datapaths
      + 90 * p.multipliers                  // multiplier datapaths
      + 70 * p.memory_slots                 // load/store units
      + 8 * p.issue_width * p.issue_width;  // register-file ports
  return std::max<std::int64_t>(1, per_cluster * p.clusters);
}

Area SystolicArea(int rows, int cols, int pe_area) {
  const std::int64_t pes = static_cast<std::int64_t>(rows) * cols;
  // Processing elements plus boundary I/O buffers.
  return std::max<std::int64_t>(1, pes * pe_area + 10L * (rows + cols));
}

Area DspPipelineArea(int taps, int bit_width) {
  // One MAC per tap; MAC cost grows with operand width.
  const std::int64_t mac = 3L * bit_width;
  return std::max<std::int64_t>(1, taps * mac + 50);
}

Area MultiplierArea(int bit_width) {
  // Array multiplier: quadratic in width, plus pipeline registers.
  const std::int64_t w = bit_width;
  return std::max<std::int64_t>(1, (w * w) / 4 + 4 * w);
}

Bytes BitstreamSize(Area area) {
  // ~96 bytes of configuration frames per area unit plus a fixed header;
  // consistent with partial bitstreams of real devices scaling linearly
  // with region size.
  return 96 * area + 1024;
}

Tick ConfigTimeFromBitstream(Bytes bitstream, Bytes bytes_per_tick) {
  if (bytes_per_tick <= 0) return 1;
  const Tick ticks = (bitstream + bytes_per_tick - 1) / bytes_per_tick;
  return std::max<Tick>(1, ticks);
}

}  // namespace dreamsim::ptype
