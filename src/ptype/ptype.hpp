// Processor-type models (the P_type of Eq. 2).
//
// A configuration instantiates a processor of a certain type on a node's
// reconfigurable fabric; the `param` set of Eq. 2 carries the architectural
// details. The paper names multipliers, systolic arrays, soft-core
// processors (the rho-VEX VLIW of [16]) and custom signal processors as
// examples; this catalogue models each with an area/bitstream cost model so
// synthetic configurations have physically plausible footprints.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace dreamsim::ptype {

/// Families of processor type the catalogue can instantiate.
enum class PtypeKind : std::uint8_t {
  kMultiplier,       // wide multiplier / MAC block
  kSystolicArray,    // NxN systolic compute array
  kDspPipeline,      // fixed-function DSP chain (FIR/FFT stages)
  kSignalProcessor,  // custom-made signal processor
  kSoftCoreVliw,     // parameterizable rho-VEX-style VLIW soft-core
};

[[nodiscard]] std::string_view ToString(PtypeKind kind);

/// One named architectural parameter (entry of the Eq. 2 `param` set).
struct Parameter {
  std::string name;
  std::int64_t value = 0;
};

/// A concrete processor type: kind + parameter values + derived costs.
struct Ptype {
  PtypeId id;
  PtypeKind kind = PtypeKind::kMultiplier;
  std::string name;
  std::vector<Parameter> params;

  /// Area footprint in area units, derived from the parameters.
  Area area = 0;

  /// Parameter lookup; returns `fallback` when absent.
  [[nodiscard]] std::int64_t Param(std::string_view param_name,
                                   std::int64_t fallback = 0) const;
};

/// Parameters of the rho-VEX-style soft-core VLIW ([16]): "the number and
/// types of functional units (multipliers and ALUs), cluster cores, the
/// number of issues, or the number of memory slots".
struct VliwParams {
  int issue_width = 4;
  int alus = 4;
  int multipliers = 2;
  int memory_slots = 1;
  int clusters = 1;
};

/// Area model for a VLIW soft-core: base control plus per-unit costs,
/// scaled by cluster count. Returned in abstract area units consistent
/// with Table II's [200, 2000] configuration range.
[[nodiscard]] Area VliwArea(const VliwParams& p);

/// Area model for an NxN systolic array.
[[nodiscard]] Area SystolicArea(int rows, int cols, int pe_area = 6);

/// Area model for a k-tap DSP pipeline.
[[nodiscard]] Area DspPipelineArea(int taps, int bit_width);

/// Area model for a wide multiplier block.
[[nodiscard]] Area MultiplierArea(int bit_width);

/// Bitstream size model: partial bitstream bytes grow linearly with the
/// region's area (frames per area unit times bytes per frame).
[[nodiscard]] Bytes BitstreamSize(Area area);

/// Configuration time model in ticks: bitstream size divided by the
/// configuration-port bandwidth (bytes per tick), at least 1 tick.
[[nodiscard]] Tick ConfigTimeFromBitstream(Bytes bitstream,
                                           Bytes bytes_per_tick);

}  // namespace dreamsim::ptype
