#include "ptype/catalogue.hpp"

#include <stdexcept>
#include <utility>

namespace dreamsim::ptype {

PtypeId Catalogue::Register(Ptype ptype) {
  const auto id = PtypeId{static_cast<std::uint32_t>(types_.size())};
  ptype.id = id;
  types_.push_back(std::move(ptype));
  return id;
}

PtypeId Catalogue::AddMultiplier(std::string name, int bit_width) {
  Ptype t;
  t.kind = PtypeKind::kMultiplier;
  t.name = std::move(name);
  t.params = {{"bit_width", bit_width}};
  t.area = MultiplierArea(bit_width);
  return Register(std::move(t));
}

PtypeId Catalogue::AddSystolicArray(std::string name, int rows, int cols) {
  Ptype t;
  t.kind = PtypeKind::kSystolicArray;
  t.name = std::move(name);
  t.params = {{"rows", rows}, {"cols", cols}};
  t.area = SystolicArea(rows, cols);
  return Register(std::move(t));
}

PtypeId Catalogue::AddDspPipeline(std::string name, int taps, int bit_width) {
  Ptype t;
  t.kind = PtypeKind::kDspPipeline;
  t.name = std::move(name);
  t.params = {{"taps", taps}, {"bit_width", bit_width}};
  t.area = DspPipelineArea(taps, bit_width);
  return Register(std::move(t));
}

PtypeId Catalogue::AddSignalProcessor(std::string name, Area area) {
  Ptype t;
  t.kind = PtypeKind::kSignalProcessor;
  t.name = std::move(name);
  t.params = {{"area_override", area}};
  t.area = area;
  return Register(std::move(t));
}

PtypeId Catalogue::AddVliw(std::string name, const VliwParams& p) {
  Ptype t;
  t.kind = PtypeKind::kSoftCoreVliw;
  t.name = std::move(name);
  t.params = {{"issue_width", p.issue_width},
              {"alus", p.alus},
              {"multipliers", p.multipliers},
              {"memory_slots", p.memory_slots},
              {"clusters", p.clusters}};
  t.area = VliwArea(p);
  return Register(std::move(t));
}

const Ptype& Catalogue::Get(PtypeId id) const {
  if (!id.valid() || id.value() >= types_.size()) {
    throw std::out_of_range("unknown PtypeId");
  }
  return types_[id.value()];
}

std::optional<PtypeId> Catalogue::FindByName(std::string_view name) const {
  for (const Ptype& t : types_) {
    if (t.name == name) return t.id;
  }
  return std::nullopt;
}

PtypeId Catalogue::Sample(Rng& rng) const {
  if (types_.empty()) throw std::logic_error("sampling an empty catalogue");
  const auto index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(types_.size()) - 1));
  return types_[index].id;
}

Catalogue Catalogue::Default() {
  Catalogue c;
  c.AddMultiplier("mult32", 32);
  c.AddMultiplier("mult64", 64);
  c.AddSystolicArray("systolic8x8", 8, 8);
  c.AddSystolicArray("systolic16x16", 16, 16);
  c.AddDspPipeline("fir64_16b", 64, 16);
  c.AddDspPipeline("fir128_24b", 128, 24);
  c.AddSignalProcessor("radar_frontend", 1400);
  c.AddSignalProcessor("sdr_demod", 900);
  c.AddVliw("rvex_2issue", VliwParams{.issue_width = 2,
                                      .alus = 2,
                                      .multipliers = 1,
                                      .memory_slots = 1,
                                      .clusters = 1});
  c.AddVliw("rvex_4issue", VliwParams{.issue_width = 4,
                                      .alus = 4,
                                      .multipliers = 2,
                                      .memory_slots = 1,
                                      .clusters = 1});
  c.AddVliw("rvex_8issue", VliwParams{.issue_width = 8,
                                      .alus = 8,
                                      .multipliers = 4,
                                      .memory_slots = 2,
                                      .clusters = 1});
  c.AddVliw("rvex_4issue_2cluster", VliwParams{.issue_width = 4,
                                               .alus = 4,
                                               .multipliers = 2,
                                               .memory_slots = 1,
                                               .clusters = 2});
  return c;
}

}  // namespace dreamsim::ptype
