// Registry of processor types available to the configuration generator.
//
// The user-defined resource specification module (Sec. III) can generate "a
// variety of processor configurations"; this catalogue is where their
// processor types come from. A default catalogue mirrors the paper's
// examples; users can register their own types.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ptype/ptype.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dreamsim::ptype {

/// Owning registry of Ptype definitions, indexed by dense PtypeId.
class Catalogue {
 public:
  /// Registers a type; the stored copy receives its id. Returns the id.
  PtypeId Register(Ptype ptype);

  /// Convenience builders for the modeled kinds.
  PtypeId AddMultiplier(std::string name, int bit_width);
  PtypeId AddSystolicArray(std::string name, int rows, int cols);
  PtypeId AddDspPipeline(std::string name, int taps, int bit_width);
  PtypeId AddSignalProcessor(std::string name, Area area);
  PtypeId AddVliw(std::string name, const VliwParams& params);

  [[nodiscard]] const Ptype& Get(PtypeId id) const;
  [[nodiscard]] std::size_t size() const { return types_.size(); }
  [[nodiscard]] bool empty() const { return types_.empty(); }
  [[nodiscard]] const std::vector<Ptype>& all() const { return types_; }

  /// Finds a type by name; nullopt when absent.
  [[nodiscard]] std::optional<PtypeId> FindByName(std::string_view name) const;

  /// Draws a uniformly random registered type id. Requires !empty().
  [[nodiscard]] PtypeId Sample(Rng& rng) const;

  /// Builds the default catalogue: a spread of multipliers, systolic
  /// arrays, DSP pipelines, signal processors, and rho-VEX-style VLIW
  /// variants whose areas span roughly Table II's [200, 2000] range.
  [[nodiscard]] static Catalogue Default();

 private:
  std::vector<Ptype> types_;
};

}  // namespace dreamsim::ptype
