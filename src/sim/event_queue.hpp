// Deterministic pending-event set for the simulation kernel.
//
// Ordering is (tick, priority, sequence): sequence is a monotonically
// increasing insertion counter, so ties are broken by scheduling order and a
// (seed, configuration) pair fully determines a run. Supports O(log n) push
// and pop and O(log n) lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace dreamsim::analysis {
class StructureAuditor;    // correctness tooling (src/analysis); read-only
class StructureCorruptor;  // test-only seeded-corruption injector
}  // namespace dreamsim::analysis

namespace dreamsim::sim {

/// Coarse event classes; lower value runs first within a tick. Completions
/// precede arrivals so a node freed at tick T can serve a task arriving at T.
enum class EventPriority : std::uint8_t {
  kCompletion = 0,
  kControl = 1,
  kArrival = 2,
  kHousekeeping = 3,
};

/// Identifies a scheduled event for cancellation.
struct EventHandle {
  std::uint64_t sequence = 0;
  [[nodiscard]] constexpr bool valid() const { return sequence != 0; }
};

/// Priority queue of (tick, priority, sequence, action) with lazy delete:
/// cancelled entries stay in the heap but their actions are dropped from the
/// side table, so they are skipped (and freed) when reached.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Enqueues an action at `tick`; returns a handle usable with Cancel().
  EventHandle Push(Tick tick, EventPriority priority, Action action);

  /// Marks an event as cancelled; it is skipped when reached.
  /// Returns false if the handle was already executed/cancelled/unknown.
  bool Cancel(EventHandle handle);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return actions_.empty(); }

  /// Number of live (not cancelled, not executed) events.
  [[nodiscard]] std::size_t size() const { return actions_.size(); }

  /// Tick of the earliest live event. Precondition: !empty().
  [[nodiscard]] Tick next_tick();

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    Tick tick;
    EventPriority priority;
    std::uint64_t sequence;
    Action action;
  };
  [[nodiscard]] Popped Pop();

  /// Total events ever pushed (diagnostics).
  [[nodiscard]] std::uint64_t pushed_total() const { return next_sequence_ - 1; }

  /// Pre-reserves heap and side-table capacity for `expected` pending
  /// events, eliminating reallocation churn on large-N runs.
  void Reserve(std::size_t expected);

 private:
  // Correctness tooling (src/analysis): read-only ground-truth diffing and
  // test-only seeded corruption. See resource/entry_list.hpp.
  friend class ::dreamsim::analysis::StructureAuditor;
  friend class ::dreamsim::analysis::StructureCorruptor;

  struct Entry {
    Tick tick;
    EventPriority priority;
    std::uint64_t sequence;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.tick != b.tick) return a.tick > b.tick;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.sequence > b.sequence;
    }
  };

  /// std::priority_queue hides its container; this shim exposes just
  /// enough of the protected member `c` to pre-reserve it.
  struct ReservingHeap : std::priority_queue<Entry, std::vector<Entry>, Later> {
    void Reserve(std::size_t n) { c.reserve(n); }
  };

  /// Pops cancelled entries off the heap top.
  void DropDead();

  ReservingHeap heap_;
  std::unordered_map<std::uint64_t, Action> actions_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace dreamsim::sim
