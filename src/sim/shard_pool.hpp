// Persistent worker pool for the sharded kernel (DESIGN.md §13).
//
// One pool lives for the whole run; each Run() broadcast hands every worker
// the same job closure with a distinct job index in [0, jobs). The calling
// thread participates, so a pool built with `threads` executes on `threads`
// OS threads total (threads - 1 workers plus the caller). Determinism is the
// caller's problem by contract: jobs must write only to their own slot of a
// pre-sized result vector, and the merge that reads those slots happens after
// Run() returns, on the calling thread, in fixed job order — never in
// completion order.
//
// The broadcast state (round counter, job queue, worker lifecycle) is
// annotated for Clang's thread-safety analysis (DESIGN.md §17): every
// member crossing the worker boundary is GUARDED_BY(mut_), so a new code
// path that reads the job queue without the mutex fails to compile under
// -Werror=thread-safety (cmake/ThreadSafety.cmake proves this with a
// negative compile probe through ShardPoolTsaProbe).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dreamsim::sim {

/// Fork-join broadcast pool. Not reentrant: Run() must not be called from
/// inside a job.
class ShardPool {
 public:
  using Job = std::function<void(std::size_t)>;

  /// Spawns `threads - 1` workers (so `threads` includes the caller).
  /// `threads` of 0 or 1 spawns none; Run() then executes inline.
  explicit ShardPool(std::size_t threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Executes `job(i)` for every i in [0, jobs) across the pool and the
  /// calling thread; returns after all jobs complete. The mutex handoff on
  /// completion publishes every job's writes to the caller.
  void Run(std::size_t jobs, const Job& job) EXCLUDES(mut_);

  /// Total OS threads participating in a Run() (workers + caller).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

 private:
  void WorkerLoop() EXCLUDES(mut_);
  /// Claims and executes jobs until the counter drains, then reports done.
  /// `job`/`jobs` are the round's broadcast, read under the mutex by the
  /// caller (workers) or still-local (Run), so the drain itself never
  /// touches guarded state outside its completion handshake.
  void DrainJobs(const Job& job, std::size_t jobs) EXCLUDES(mut_);

  // The compile-fail probe in cmake/ThreadSafety.cmake: reads jobs_ without
  // mut_ and must NOT build under -Werror=thread-safety (the annotations'
  // non-vacuity check). Not defined anywhere in the product tree.
  friend class ShardPoolTsaProbe;

  util::Mutex mut_;
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  std::uint64_t round_ GUARDED_BY(mut_) = 0;  // generation; bumped per Run()
  std::size_t jobs_ GUARDED_BY(mut_) = 0;     // job count of current round
  const Job* job_ GUARDED_BY(mut_) = nullptr;  // current round's job
  std::atomic<std::size_t> next_{0};  // next unclaimed job index (relaxed)
  std::size_t active_ GUARDED_BY(mut_) = 0;  // threads still draining
  bool stop_ GUARDED_BY(mut_) = false;
  std::vector<std::thread> workers_;  // set in ctor, joined in dtor only
};

}  // namespace dreamsim::sim
