// Persistent worker pool for the sharded kernel (DESIGN.md §13).
//
// One pool lives for the whole run; each Run() broadcast hands every worker
// the same job closure with a distinct job index in [0, jobs). The calling
// thread participates, so a pool built with `threads` executes on `threads`
// OS threads total (threads - 1 workers plus the caller). Determinism is the
// caller's problem by contract: jobs must write only to their own slot of a
// pre-sized result vector, and the merge that reads those slots happens after
// Run() returns, on the calling thread, in fixed job order — never in
// completion order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dreamsim::sim {

/// Fork-join broadcast pool. Not reentrant: Run() must not be called from
/// inside a job.
class ShardPool {
 public:
  using Job = std::function<void(std::size_t)>;

  /// Spawns `threads - 1` workers (so `threads` includes the caller).
  /// `threads` of 0 or 1 spawns none; Run() then executes inline.
  explicit ShardPool(std::size_t threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Executes `job(i)` for every i in [0, jobs) across the pool and the
  /// calling thread; returns after all jobs complete. The mutex handoff on
  /// completion publishes every job's writes to the caller.
  void Run(std::size_t jobs, const Job& job);

  /// Total OS threads participating in a Run() (workers + caller).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

 private:
  void WorkerLoop();
  /// Claims and executes jobs until the counter drains, then reports done.
  void DrainJobs();

  std::mutex mut_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;      // generation counter; bumped per Run()
  std::size_t jobs_ = 0;         // job count of the current round
  const Job* job_ = nullptr;     // current round's job (valid while active)
  std::atomic<std::size_t> next_{0};  // next unclaimed job index
  std::size_t active_ = 0;       // workers still draining this round
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dreamsim::sim
