#include "sim/shard_pool.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace dreamsim::sim {
namespace {

[[nodiscard]] std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Host-plane per-job sample: shard job i records into per-shard cell i+1
/// (cell 0 is the simulation thread's lane).
void RecordJob(std::size_t i, std::uint64_t ns) {
  auto& reg = obs::MetricsRegistry::Instance();
  const std::size_t cell = i + 1;
  reg.Add(obs::MetricId::kPoolJobsExecuted, 1, cell);
  reg.Add(obs::MetricId::kPoolShardBusyNs, ns, cell);
  reg.Observe(obs::MetricId::kPoolJobNs, ns, cell);
}

}  // namespace

ShardPool::ShardPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const util::MutexLock lock(mut_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ShardPool::Run(std::size_t jobs, const Job& job) {
  if (jobs == 0) return;
  const bool instrumented = obs::MetricsRegistry::enabled();
  std::uint64_t start_ns = 0;
  if (instrumented) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.NoteShardCells(jobs);
    reg.Add(obs::MetricId::kPoolBroadcasts);
    reg.Observe(obs::MetricId::kPoolBatchJobs, jobs);
    start_ns = NowNs();
  }
  if (workers_.empty() || jobs == 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      if (!instrumented) {
        job(i);
        continue;
      }
      const std::uint64_t job_start = NowNs();
      job(i);
      RecordJob(i, NowNs() - job_start);
    }
    if (instrumented) {
      obs::MetricsRegistry::Instance().Observe(
          obs::MetricId::kPoolBroadcastNs, NowNs() - start_ns);
    }
    return;
  }
  {
    const util::MutexLock lock(mut_);
    jobs_ = jobs;
    job_ = &job;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size() + 1;  // workers + this thread
    ++round_;
  }
  work_cv_.NotifyAll();
  DrainJobs(job, jobs);
  {
    // Waiting on active_ == 0 under the mutex gives this thread an
    // acquire edge past every worker's release, publishing their writes.
    const std::uint64_t join_start = instrumented ? NowNs() : 0;
    const util::MutexLock lock(mut_);
    while (active_ != 0) done_cv_.Wait(mut_);
    job_ = nullptr;
    if (instrumented) {
      const std::uint64_t end = NowNs();
      auto& reg = obs::MetricsRegistry::Instance();
      reg.Observe(obs::MetricId::kPoolJoinWaitNs, end - join_start);
      reg.Observe(obs::MetricId::kPoolBroadcastNs, end - start_ns);
    }
  }
}

void ShardPool::DrainJobs(const Job& job, std::size_t jobs) {
  const bool instrumented = obs::MetricsRegistry::enabled();
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs) break;
    if (!instrumented) {
      job(i);
      continue;
    }
    const std::uint64_t job_start = NowNs();
    job(i);
    RecordJob(i, NowNs() - job_start);
  }
  {
    const util::MutexLock lock(mut_);
    --active_;
    if (active_ == 0) done_cv_.NotifyAll();
  }
}

void ShardPool::WorkerLoop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    const Job* job = nullptr;
    std::size_t jobs = 0;
    {
      const util::MutexLock lock(mut_);
      while (!stop_ && round_ == seen_round) work_cv_.Wait(mut_);
      if (stop_) return;
      seen_round = round_;
      job = job_;
      jobs = jobs_;
    }
    DrainJobs(*job, jobs);
  }
}

}  // namespace dreamsim::sim
