#include "sim/shard_pool.hpp"

namespace dreamsim::sim {

ShardPool::ShardPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mut_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardPool::Run(std::size_t jobs, const Job& job) {
  if (jobs == 0) return;
  if (workers_.empty() || jobs == 1) {
    for (std::size_t i = 0; i < jobs; ++i) job(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mut_);
    jobs_ = jobs;
    job_ = &job;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size() + 1;  // workers + this thread
    ++round_;
  }
  work_cv_.notify_all();
  DrainJobs();
  {
    // Waiting on active_ == 0 under the mutex gives this thread an
    // acquire edge past every worker's release, publishing their writes.
    std::unique_lock<std::mutex> lock(mut_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
  }
}

void ShardPool::DrainJobs() {
  const Job& job = *job_;
  const std::size_t jobs = jobs_;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs) break;
    job(i);
  }
  {
    const std::lock_guard<std::mutex> lock(mut_);
    --active_;
    if (active_ == 0) done_cv_.notify_all();
  }
}

void ShardPool::WorkerLoop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mut_);
      work_cv_.wait(lock,
                    [&] { return stop_ || round_ != seen_round; });
      if (stop_) return;
      seen_round = round_;
    }
    DrainJobs();
  }
}

}  // namespace dreamsim::sim
