#include "sim/kernel.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace dreamsim::sim {

EventHandle Kernel::ScheduleAfter(Tick delay, EventPriority priority,
                                  Action action) {
  if (delay < 0) throw std::invalid_argument("negative event delay");
  return queue_.Push(clock_.now() + delay, priority, std::move(action));
}

EventHandle Kernel::ScheduleAt(Tick at, EventPriority priority, Action action) {
  if (at < clock_.now()) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  return queue_.Push(at, priority, std::move(action));
}

bool Kernel::Step() {
  if (queue_.empty()) return false;
  auto popped = queue_.Pop();
  if (obs::MetricsRegistry::enabled()) {
    // Simulated-time stride between consecutive executed events — a model-
    // plane histogram: the event order is a pure function of (seed, config).
    obs::MetricObserve(
        obs::MetricId::kEventGapTicks,
        static_cast<std::uint64_t>(popped.tick - clock_.now()));
  }
  clock_.AdvanceTo(popped.tick);
  ++executed_;
  popped.action();
  return true;
}

std::uint64_t Kernel::Run(Tick horizon) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_tick() > horizon) break;
    if (!Step()) break;
    ++count;
  }
  return count;
}

void Kernel::Reset() {
  // EventQueue has no clear(); drain it.
  while (!queue_.empty()) (void)queue_.Pop();
  clock_.Reset();
  executed_ = 0;
  stop_requested_ = false;
}

}  // namespace dreamsim::sim
