// Simulated clock in integer ticks.
//
// The paper's DreamSim class exposes IncreaseTimeTick()/DecreaseTimeTick();
// we keep those for API parity while the kernel normally advances the clock
// directly to the next event ("total simulation time = total number of
// timeticks", Eq. 5).
#pragma once

#include <cassert>

#include "util/types.hpp"

namespace dreamsim::sim {

/// Monotonic (except for explicit rewind) tick counter.
class Clock {
 public:
  [[nodiscard]] Tick now() const { return now_; }

  /// Advances one tick (paper API parity).
  void IncreaseTimeTick() { ++now_; }

  /// Rewinds one tick. Exists because the paper's UML lists it; the kernel
  /// never calls it during forward simulation.
  void DecreaseTimeTick() {
    assert(now_ > 0);
    --now_;
  }

  /// Jumps forward to `tick`. Precondition: tick >= now().
  void AdvanceTo(Tick tick) {
    assert(tick >= now_);
    now_ = tick;
  }

  /// Resets to tick zero (reuse across simulation runs).
  void Reset() { now_ = 0; }

 private:
  Tick now_ = 0;
};

}  // namespace dreamsim::sim
