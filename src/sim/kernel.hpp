// Discrete-event simulation kernel: owns the clock and the event queue, and
// runs the event loop. Entities (the RMS, the job submission manager)
// schedule closures; the kernel advances the clock to each event's tick and
// executes it. Integer-tick semantics match the paper's timetick model while
// avoiding per-tick iteration over billion-tick horizons.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace dreamsim::sim {

/// Event-loop driver.
class Kernel {
 public:
  using Action = EventQueue::Action;

  /// Schedules `action` to run `delay` ticks from now (delay >= 0).
  EventHandle ScheduleAfter(Tick delay, EventPriority priority, Action action);

  /// Schedules `action` at absolute tick `at` (at >= now()).
  EventHandle ScheduleAt(Tick at, EventPriority priority, Action action);

  /// Cancels a previously scheduled event; false if already run/cancelled.
  bool Cancel(EventHandle handle) { return queue_.Cancel(handle); }

  /// Runs until the event queue drains or the clock passes `horizon`.
  /// Returns the number of events executed.
  std::uint64_t Run(Tick horizon = std::numeric_limits<Tick>::max());

  /// Executes at most one event; returns false when the queue is empty.
  bool Step();

  /// Requests the Run() loop to stop after the current event.
  void RequestStop() { stop_requested_ = true; }

  [[nodiscard]] Tick now() const { return clock_.now(); }
  [[nodiscard]] const Clock& clock() const { return clock_; }
  [[nodiscard]] Clock& clock() { return clock_; }
  /// Read-only view of the pending-event set (structure audits).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Clears all pending events and rewinds the clock to zero.
  void Reset();

  /// Pre-reserves event-queue capacity for `expected` pending events.
  void ReserveEvents(std::size_t expected) { queue_.Reserve(expected); }

 private:
  Clock clock_;
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace dreamsim::sim
