#include "sim/event_queue.hpp"

#include <cassert>

#include "obs/metrics.hpp"

namespace dreamsim::sim {

EventHandle EventQueue::Push(Tick tick, EventPriority priority, Action action) {
  const std::uint64_t seq = next_sequence_++;
  heap_.push(Entry{tick, priority, seq});
  actions_.emplace(seq, std::move(action));
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kEvqPushed);
    reg.Add(obs::MetricId::kEvqHeapSifts);
    reg.GaugeSet(obs::MetricId::kEvqDepth, actions_.size());
    reg.GaugeMax(obs::MetricId::kEvqDepthPeak, actions_.size());
  }
  return EventHandle{seq};
}

bool EventQueue::Cancel(EventHandle handle) {
  const bool cancelled = actions_.erase(handle.sequence) > 0;
  if (cancelled && obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kEvqCancelled);
    reg.GaugeSet(obs::MetricId::kEvqDepth, actions_.size());
  }
  return cancelled;
}

void EventQueue::Reserve(std::size_t expected) {
  heap_.Reserve(expected);
  actions_.reserve(expected);
}

void EventQueue::DropDead() {
  while (!heap_.empty() && !actions_.contains(heap_.top().sequence)) {
    heap_.pop();
    if (obs::MetricsRegistry::enabled()) {
      auto& reg = obs::MetricsRegistry::Instance();
      reg.Add(obs::MetricId::kEvqDeadDropped);
      reg.Add(obs::MetricId::kEvqHeapSifts);
    }
  }
}

Tick EventQueue::next_tick() {
  DropDead();
  assert(!heap_.empty());
  return heap_.top().tick;
}

EventQueue::Popped EventQueue::Pop() {
  DropDead();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.sequence);
  assert(it != actions_.end());
  Popped popped{top.tick, top.priority, top.sequence, std::move(it->second)};
  actions_.erase(it);
  if (obs::MetricsRegistry::enabled()) {
    auto& reg = obs::MetricsRegistry::Instance();
    reg.Add(obs::MetricId::kEvqPopped);
    reg.Add(obs::MetricId::kEvqHeapSifts);
    reg.GaugeSet(obs::MetricId::kEvqDepth, actions_.size());
  }
  return popped;
}

}  // namespace dreamsim::sim
