#include "sim/event_queue.hpp"

#include <cassert>

namespace dreamsim::sim {

EventHandle EventQueue::Push(Tick tick, EventPriority priority, Action action) {
  const std::uint64_t seq = next_sequence_++;
  heap_.push(Entry{tick, priority, seq});
  actions_.emplace(seq, std::move(action));
  return EventHandle{seq};
}

bool EventQueue::Cancel(EventHandle handle) {
  return actions_.erase(handle.sequence) > 0;
}

void EventQueue::Reserve(std::size_t expected) {
  heap_.Reserve(expected);
  actions_.reserve(expected);
}

void EventQueue::DropDead() {
  while (!heap_.empty() && !actions_.contains(heap_.top().sequence)) {
    heap_.pop();
  }
}

Tick EventQueue::next_tick() {
  DropDead();
  assert(!heap_.empty());
  return heap_.top().tick;
}

EventQueue::Popped EventQueue::Pop() {
  DropDead();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.sequence);
  assert(it != actions_.end());
  Popped popped{top.tick, top.priority, top.sequence, std::move(it->second)};
  actions_.erase(it);
  return popped;
}

}  // namespace dreamsim::sim
