// Fault-bookkeeping overhead smoke (DESIGN.md §10), emitted as
// machine-readable JSON so the perf trajectory can be tracked across
// commits.
//
// Fault injection must be pay-for-what-you-use: with the fault model
// disabled the simulator keeps its original zero-overhead paths, and with
// the model armed but never firing (astronomical MTBF) the extra
// bookkeeping — completion-handle tracking, per-node process events,
// terminal-task counting — must cost under 5% wall-clock at the paper's
// 200-node scale while leaving every paper-facing metric bit-identical to
// the disabled run. A third, actively failing run is reported for context.
//
// Output: BENCH_faults.json next to the executable (override with --out).
// --quick shrinks the workload for CI smoke runs. Exit status is non-zero
// if metrics diverge or the no-fire overhead breaches the 5% budget.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

SimulationConfig BaseConfig(int tasks) {
  SimulationConfig config;  // Table II: 200 nodes, 50 configs
  config.tasks.total_tasks = tasks;
  config.enable_monitoring = false;
  config.seed = 42;
  return config;
}

MetricsReport RunOnce(const SimulationConfig& config, double& seconds) {
  SimulationConfig copy = config;
  const auto start = Clock::now();
  Simulator sim(std::move(copy));
  MetricsReport report = sim.Run();
  seconds = SecondsSince(start);
  return report;
}

/// Min-of-N wall clock (N runs), so a background scheduling hiccup cannot
/// fake an overhead breach; returns the report of the last run.
MetricsReport RunTimed(const SimulationConfig& config, int reps,
                       double& best_seconds) {
  best_seconds = 1e300;
  MetricsReport report;
  for (int i = 0; i < reps; ++i) {
    double seconds = 0.0;
    report = RunOnce(config, seconds);
    best_seconds = std::min(best_seconds, seconds);
  }
  return report;
}

bool PaperMetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  return a.completed_tasks == b.completed_tasks &&
         a.discarded_tasks == b.discarded_tasks &&
         a.suspended_ever == b.suspended_ever &&
         a.avg_wasted_area_per_task == b.avg_wasted_area_per_task &&
         a.avg_task_running_time == b.avg_task_running_time &&
         a.avg_reconfig_count_per_node == b.avg_reconfig_count_per_node &&
         a.avg_config_time_per_task == b.avg_config_time_per_task &&
         a.avg_waiting_time_per_task == b.avg_waiting_time_per_task &&
         a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
         a.total_scheduler_workload == b.total_scheduler_workload &&
         a.total_simulation_time == b.total_simulation_time &&
         a.total_reconfigurations == b.total_reconfigurations;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable regardless of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Fault-bookkeeping overhead smoke; writes BENCH_faults.json");
  cli.AddBool("quick", false, "CI smoke workload (fewer tasks, fewer reps)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_faults.json";
  }

  const int tasks = quick ? 5000 : 20000;
  const int reps = quick ? 3 : 5;
  constexpr double kOverheadBudgetPct = 5.0;

  // Baseline: fault model disabled — the original zero-overhead paths.
  const SimulationConfig baseline_config = BaseConfig(tasks);
  double baseline_seconds = 0.0;
  const MetricsReport baseline =
      RunTimed(baseline_config, reps, baseline_seconds);

  // Armed but never firing: per-node MTBF far past any reachable tick, so
  // all the bookkeeping runs and no failure ever lands.
  SimulationConfig armed_config = BaseConfig(tasks);
  armed_config.faults.mtbf = 1e12;
  armed_config.faults.mttr = 1e6;
  double armed_seconds = 0.0;
  const MetricsReport armed = RunTimed(armed_config, reps, armed_seconds);

  const bool identical = PaperMetricsIdentical(baseline, armed);
  const double overhead_pct =
      baseline_seconds > 0.0
          ? (armed_seconds - baseline_seconds) / baseline_seconds * 100.0
          : 0.0;
  const bool within_budget = overhead_pct < kOverheadBudgetPct;

  // Context: an actively failing-and-repairing run at the same scale.
  SimulationConfig active_config = BaseConfig(tasks);
  active_config.tasks.max_required_time = 5000;  // keep kills recoverable
  active_config.max_suspension_retries = 10;
  active_config.faults.mtbf = 200'000;
  active_config.faults.mttr = 20'000;
  double active_seconds = 0.0;
  const MetricsReport active = RunOnce(active_config, active_seconds);

  std::cout << Format("fault bookkeeping @ {} nodes, {} tasks\n",
                      baseline.total_nodes, tasks);
  std::cout << Format("  disabled: {}s   armed-no-fire: {}s   overhead: {}%"
                      " (budget {}%)\n",
                      Fixed(baseline_seconds, 3), Fixed(armed_seconds, 3),
                      Fixed(overhead_pct, 2), Fixed(kOverheadBudgetPct, 1));
  std::cout << Format("  paper metrics identical: {}\n",
                      identical ? "yes" : "NO");
  std::cout << Format(
      "  active faults: {}s, {} failures, {} repairs, {} kills, {} recovered,"
      " {} lost\n",
      Fixed(active_seconds, 3), active.failures_injected,
      active.repairs_completed, active.tasks_killed, active.tasks_recovered,
      active.tasks_lost_to_failure);

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"faults\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"nodes\": {},\n", baseline.total_nodes);
  out << Format("  \"tasks\": {},\n", tasks);
  out << Format("  \"baseline_seconds\": {},\n", baseline_seconds);
  out << Format("  \"armed_seconds\": {},\n", armed_seconds);
  out << Format("  \"overhead_pct\": {},\n", overhead_pct);
  out << Format("  \"overhead_budget_pct\": {},\n", kOverheadBudgetPct);
  out << Format("  \"metrics_identical\": {},\n",
                identical ? "true" : "false");
  out << "  \"active\": {\n";
  out << Format("    \"seconds\": {},\n", active_seconds);
  out << Format("    \"failures_injected\": {},\n", active.failures_injected);
  out << Format("    \"repairs_completed\": {},\n", active.repairs_completed);
  out << Format("    \"tasks_killed\": {},\n", active.tasks_killed);
  out << Format("    \"tasks_recovered\": {},\n", active.tasks_recovered);
  out << Format("    \"tasks_lost_to_failure\": {},\n",
                active.tasks_lost_to_failure);
  out << Format("    \"total_downtime\": {}\n", active.total_downtime);
  out << "  }\n";
  out << "}\n";
  if (!out.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical && within_budget ? 0 : 1;
}
