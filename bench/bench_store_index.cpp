// Indexed-vs-scan comparison for the resource store's scheduler queries
// (DESIGN.md "Scheduler index"), emitted as machine-readable JSON so the
// perf trajectory can be tracked across commits.
//
// Two layers:
//   1. ns/query for each counted scheduler query at 1k/10k/100k nodes,
//      scan (SetIndexed(false)) vs indexed, on identical populations.
//   2. End-to-end RunSweep wall-clock with scheduler_index off vs on, plus
//      a cross-check that the paper-facing metrics (avg scheduling steps
//      per task, total scheduler workload) are bit-identical in both modes.
//
// Output: BENCH_store_index.json next to the executable (override with
// --out). --quick shrinks the grid for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "resource/store.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::RunSweep;
using dreamsim::core::SweepParams;
using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryRef;
using resource::HostRank;
using resource::ResourceStore;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

ConfigCatalogue MakeCatalogue(int count, Rng& rng) {
  ConfigCatalogue c;
  for (int i = 0; i < count; ++i) {
    Configuration cfg;
    cfg.required_area = rng.uniform_int(200, 2000);
    cfg.config_time = rng.uniform_int(10, 20);
    c.Add(cfg);
  }
  return c;
}

/// Same mixed population as micro_datastructures' MakeQueryStore: ~20%
/// blank nodes, the rest with 1-3 entries, about half of them busy.
/// Deterministic, so the scan and indexed stores see identical state.
ResourceStore MakeQueryStore(int nodes, bool indexed) {
  Rng rng(8);
  ResourceStore store(MakeCatalogue(50, rng));
  store.SetIndexed(indexed);
  for (int i = 0; i < nodes; ++i) {
    (void)store.AddNode(rng.uniform_int(1000, 4000));
  }
  std::uint32_t next_task = 0;
  for (int i = 0; i < nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (rng.uniform_int(0, 9) < 2) continue;  // stays blank
    const std::int64_t entries = rng.uniform_int(1, 3);
    for (std::int64_t k = 0; k < entries; ++k) {
      const auto cfg =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 49))};
      if (store.configs().Get(cfg).required_area >
          store.node(id).available_area()) {
        continue;
      }
      const EntryRef entry = store.Configure(id, cfg);
      if (rng.uniform_int(0, 1) == 0) {
        store.AssignTask(entry, TaskId{next_task++});
      }
    }
  }
  return store;
}

/// Times `fn` until at least `min_seconds` of samples accumulate; returns
/// mean ns per call.
double NsPerCall(const std::function<void()>& fn, double min_seconds) {
  fn();  // warm-up
  std::uint64_t iterations = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) fn();
    const double elapsed = SecondsSince(start);
    if (elapsed >= min_seconds || iterations >= (1ULL << 26)) {
      return elapsed * 1e9 / static_cast<double>(iterations);
    }
    const double target = min_seconds * 1.2;
    const double guess = elapsed > 0.0
                             ? static_cast<double>(iterations) * target / elapsed
                             : static_cast<double>(iterations) * 16.0;
    iterations = std::max(iterations * 2, static_cast<std::uint64_t>(guess));
  }
}

struct QueryRow {
  std::string query;
  int nodes = 0;
  double scan_ns = 0.0;
  double indexed_ns = 0.0;
  [[nodiscard]] double Speedup() const {
    return indexed_ns > 0.0 ? scan_ns / indexed_ns : 0.0;
  }
};

struct NamedQuery {
  std::string name;
  std::function<void(ResourceStore&)> run;
};

std::vector<NamedQuery> Queries() {
  // Areas > 4000 (the max TotalArea) force the scans' worst case: every
  // node visited, no early exit.
  return {
      {"FindBestBlankNode",
       [](ResourceStore& s) { (void)s.FindBestBlankNode(2500); }},
      {"FindBestPartiallyBlankNode",
       [](ResourceStore& s) { (void)s.FindBestPartiallyBlankNode(1200); }},
      {"FindAnyIdleNode",
       [](ResourceStore& s) { (void)s.FindAnyIdleNode(4100); }},
      {"AnyBusyNodeCouldFit",
       [](ResourceStore& s) { (void)s.AnyBusyNodeCouldFit(4100); }},
      {"FindBestIdleConfiguredNode",
       [](ResourceStore& s) { (void)s.FindBestIdleConfiguredNode(2000); }},
      {"FindRankedHostNode",
       [](ResourceStore& s) {
         (void)s.FindRankedHostNode(1500, HostRank::kBestFit);
       }},
  };
}

/// One end-to-end comparison point. The paper-scale scenarios use Table
/// II defaults; the large-scale one saturates a big cluster (fast
/// arrivals, bounded suspension queue) so the O(N) phase walks — not the
/// mode-independent suspension-queue drain — dominate the host work.
struct Scenario {
  std::string name;
  sched::ReconfigMode mode;
  int nodes;
  std::vector<int> task_counts;
  Tick max_interval;            // 0 = Table II default [1, 50]
  std::size_t queue_capacity;   // 0 = unbounded
};

struct SweepResult {
  Scenario scenario;
  double scan_seconds = 0.0;
  double indexed_seconds = 0.0;
  bool metrics_identical = false;
  [[nodiscard]] double Speedup() const {
    return indexed_seconds > 0.0 ? scan_seconds / indexed_seconds : 0.0;
  }
};

SweepResult RunEndToEnd(const Scenario& scenario, std::uint64_t seed) {
  SweepResult result;
  result.scenario = scenario;

  SweepParams params;
  params.base.nodes.count = scenario.nodes;
  params.base.seed = seed;
  params.base.enable_monitoring = false;
  if (scenario.max_interval > 0) {
    params.base.tasks.max_interval = scenario.max_interval;
  }
  params.base.suspension_capacity = scenario.queue_capacity;
  params.task_counts = scenario.task_counts;
  params.modes = {scenario.mode};
  params.threads = 1;  // honest wall-clock

  params.base.scheduler_index = false;
  auto start = Clock::now();
  const std::vector<MetricsReport> scan_reports = RunSweep(params);
  result.scan_seconds = SecondsSince(start);

  params.base.scheduler_index = true;
  start = Clock::now();
  const std::vector<MetricsReport> indexed_reports = RunSweep(params);
  result.indexed_seconds = SecondsSince(start);

  result.metrics_identical = scan_reports.size() == indexed_reports.size();
  for (std::size_t i = 0;
       result.metrics_identical && i < scan_reports.size(); ++i) {
    const MetricsReport& a = scan_reports[i];
    const MetricsReport& b = indexed_reports[i];
    result.metrics_identical =
        a.total_scheduler_workload == b.total_scheduler_workload &&
        a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
        a.completed_tasks == b.completed_tasks &&
        a.total_reconfigurations == b.total_reconfigurations;
  }
  return result;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable — build/bench/ under the standard layout — regardless
/// of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

[[nodiscard]] bool WriteJson(const std::string& path, bool quick,
                             const std::vector<QueryRow>& rows,
                             const std::vector<SweepResult>& sweeps) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"store_index\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << "  \"queries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const QueryRow& r = rows[i];
    out << Format(
        "    {{\"query\": \"{}\", \"nodes\": {}, \"scan_ns\": {}, "
        "\"indexed_ns\": {}, \"speedup\": {}}}{}\n",
        r.query, r.nodes, r.scan_ns, r.indexed_ns, r.Speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& s = sweeps[i];
    std::string tasks;
    for (std::size_t t = 0; t < s.scenario.task_counts.size(); ++t) {
      tasks += Format("{}{}", t > 0 ? ", " : "", s.scenario.task_counts[t]);
    }
    out << Format(
        "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"nodes\": {}, "
        "\"task_counts\": [{}], \"scan_seconds\": {}, \"indexed_seconds\": "
        "{}, \"speedup\": {}, \"metrics_identical\": {}}}{}\n",
        s.scenario.name,
        s.scenario.mode == sched::ReconfigMode::kFull ? "full" : "partial",
        s.scenario.nodes, tasks, s.scan_seconds, s.indexed_seconds,
        s.Speedup(), s.metrics_identical ? "true" : "false",
        i + 1 < sweeps.size() ? "," : "");
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Indexed-vs-scan scheduler query comparison; writes "
      "BENCH_store_index.json");
  cli.AddBool("quick", false, "CI smoke grid (1k/10k nodes, short sweep)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  // The bounded-queue scenario discards tasks by design; keep the
  // per-discard warnings out of the bench output.
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_store_index.json";
  }

  const std::vector<int> node_counts =
      quick ? std::vector<int>{1000, 10000}
            : std::vector<int>{1000, 10000, 100000};
  const double min_seconds = quick ? 0.01 : 0.05;

  std::vector<QueryRow> rows;
  std::cout << Format("{:>28}{:>9}{:>14}{:>14}{:>10}\n", "query", "nodes",
                      "scan ns", "indexed ns", "speedup");
  for (const int nodes : node_counts) {
    ResourceStore scan_store = MakeQueryStore(nodes, false);
    ResourceStore indexed_store = MakeQueryStore(nodes, true);
    for (const NamedQuery& q : Queries()) {
      QueryRow row;
      row.query = q.name;
      row.nodes = nodes;
      row.scan_ns = NsPerCall([&] { q.run(scan_store); }, min_seconds);
      row.indexed_ns = NsPerCall([&] { q.run(indexed_store); }, min_seconds);
      std::cout << Format("{:>28}{:>9}{:>14}{:>14}{:>10}\n", row.query,
                          row.nodes, Fixed(row.scan_ns, 1),
                          Fixed(row.indexed_ns, 1),
                          Fixed(row.Speedup(), 1) + "x");
      rows.push_back(std::move(row));
    }
  }

  // End-to-end. At the paper's own scale (Table II: 200 nodes) the
  // mode-independent suspension-queue drain dominates the host work, so
  // the ratio stays near 1 — the index's value there is the per-query
  // numbers above. The large-scale scenario is where the title's
  // "large-scale distributed systems" claim bites: a saturated big
  // cluster with a bounded suspension queue, where the O(N) phase walks
  // dominate and the index wins end to end.
  std::vector<Scenario> scenarios;
  if (quick) {
    scenarios.push_back(
        {"paper-scale", sched::ReconfigMode::kPartial, 200, {5000}, 0, 0});
    scenarios.push_back(
        {"large-scale", sched::ReconfigMode::kPartial, 2000, {8000}, 4, 500});
  } else {
    scenarios.push_back(
        {"paper-scale", sched::ReconfigMode::kFull, 200, {20000}, 0, 0});
    scenarios.push_back(
        {"paper-scale", sched::ReconfigMode::kPartial, 200, {20000}, 0, 0});
    scenarios.push_back({"large-scale", sched::ReconfigMode::kPartial, 10000,
                         {30000}, 4, 500});
  }
  std::cout << "\nend-to-end RunSweep\n";
  std::vector<SweepResult> sweeps;
  bool identical = true;
  for (const Scenario& scenario : scenarios) {
    SweepResult sweep = RunEndToEnd(scenario, 42);
    std::cout << Format(
        "  {:<12}{:<8}{:>7} nodes  scan: {}s  indexed: {}s  speedup: {}x  "
        "metrics identical: {}\n",
        scenario.name,
        scenario.mode == sched::ReconfigMode::kFull ? "full" : "partial",
        scenario.nodes, Fixed(sweep.scan_seconds, 3),
        Fixed(sweep.indexed_seconds, 3), Fixed(sweep.Speedup(), 2),
        sweep.metrics_identical ? "yes" : "NO");
    identical = identical && sweep.metrics_identical;
    sweeps.push_back(std::move(sweep));
  }

  if (!WriteJson(out_path, quick, rows, sweeps)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical ? 0 : 1;
}
