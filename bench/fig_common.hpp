// Shared harness for the figure-reproduction benches (Figs. 6-10).
//
// Every figure in the paper's evaluation is a task-count sweep comparing
// "without partial configuration" against "with partial configuration".
// Each bench binary names the metric(s) it extracts; this header supplies
// the CLI surface, the sweep, and the series printer.
//
// Defaults run a scaled-down sweep (fast enough for `for b in bench/*; do
// $b; done`); pass --full for the paper's exact 1000..100000 x axis.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace dreamsim::bench {

struct FigureSeries {
  std::string name;  // e.g. "avg_wasted_area_per_task"
  double (*extract)(const core::MetricsReport&);
};

struct FigureSpec {
  std::string figure;       // e.g. "Fig. 6"
  std::string description;  // printed above the table
  std::vector<int> node_counts;
  std::vector<FigureSeries> series;
};

/// Runs the sweep(s) for one figure and prints one table per node count:
/// rows are task counts, columns are <metric>/<mode>. Returns an exit code.
inline int RunFigure(int argc, char** argv, const FigureSpec& spec) {
  using namespace dreamsim::core;

  CliParser cli(Format("{} reproduction: {}", spec.figure, spec.description));
  cli.AddInt("seed", 42, "random seed shared by both modes");
  cli.AddDouble("scale", 0.05,
                "task-axis scale; 1.0 = the paper's 1000..100000 sweep");
  cli.AddBool("full", false, "shorthand for --scale=1.0 (paper scale)");
  cli.AddInt("threads", 0, "worker threads (0 = hardware concurrency)");
  cli.AddString("csv", "", "also write the series to this CSV file");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const double scale = cli.GetBool("full") ? 1.0 : cli.GetDouble("scale");
  const std::vector<int> task_counts = PaperTaskCounts(scale);

  std::vector<std::vector<std::string>> csv_rows;
  for (const int nodes : spec.node_counts) {
    SweepParams params;
    params.base.nodes.count = nodes;
    params.base.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    params.base.enable_monitoring = false;  // large sweeps
    params.task_counts = task_counts;
    params.modes = {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial};
    params.threads = static_cast<unsigned>(cli.GetInt("threads"));
    const std::vector<MetricsReport> reports = RunSweep(params);
    const std::size_t n = task_counts.size();

    std::cout << Format("\n=== {} — {} ({} nodes) ===\n", spec.figure,
                        spec.description, nodes);
    std::string header = Format("{:>10}", "tasks");
    for (const FigureSeries& s : spec.series) {
      header += Format("{:>24}{:>24}", s.name + "/full", s.name + "/partial");
    }
    std::cout << header << "\n";
    for (std::size_t t = 0; t < n; ++t) {
      std::string line = Format("{:>10}", task_counts[t]);
      std::vector<std::string> row{Format("{}", nodes),
                                   Format("{}", task_counts[t])};
      for (const FigureSeries& s : spec.series) {
        const double full_value = s.extract(reports[t]);
        const double partial_value = s.extract(reports[n + t]);
        line += Format("{:>24}{:>24}", Format("{}", full_value),
                       Format("{}", partial_value));
        row.push_back(Format("{}", full_value));
        row.push_back(Format("{}", partial_value));
      }
      std::cout << line << "\n";
      csv_rows.push_back(std::move(row));
    }
  }

  const std::string csv_path = cli.GetString("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    std::vector<std::string> header{"nodes", "tasks"};
    for (const FigureSeries& s : spec.series) {
      header.push_back(s.name + "_full");
      header.push_back(s.name + "_partial");
    }
    CsvWriter csv(out, header);
    for (const auto& row : csv_rows) csv.WriteRow(row);
    std::cout << "\nwrote " << csv_path << "\n";
  }
  return 0;
}

}  // namespace dreamsim::bench
