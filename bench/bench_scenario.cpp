// Scenario-pipeline throughput smoke, emitted as machine-readable JSON so
// the perf trajectory can be tracked across commits.
//
// The scenario path runs before every simulation the daemon or sweep
// launches, so its three stages are gated on throughput floors: parsing a
// multi-class scenario text, the canonical re-serialization + FNV hash
// (the sweep/daemon cache key), and merged multi-class workload generation.
// The floors are deliberately loose — they catch an accidental
// quadratic-blowup or per-line allocation storm, not machine variance —
// and, like bench_metrics' hook gate, absolute throughput is only gated in
// optimized builds.
//
// Output: BENCH_scenario.json next to the executable (override with
// --out). --quick shrinks the iteration counts for CI smoke runs.
#include <algorithm>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "resource/config.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "workload/task_classes.hpp"

namespace {

using namespace dreamsim;

double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// A representative multi-class scenario: three device families, three
/// arrival shapes, chains, and per-class seeds — every grammar feature the
/// parser pays for.
constexpr std::string_view kScenarioText = R"(# bench_scenario input
simulation: {
  name: bench-scenario
  seed: 42
  mode: partial
}
configurations: {
  count: 50
  area: [200, 2000]
  config time: [10, 20]
}
device class: {
  name: big
  count: 120
  area: [2000, 4000]
}
device class: {
  name: little
  count: 80
  area: [1000, 2000]
}
task class: {
  name: steady
  count: 400
  interval: [1, 50]
  required time: [100, 20000]
}
task class: {
  name: bursty-web
  count: 300
  arrivals: bursty
  burst size: [4, 12]
  burst gap: [200, 800]
  interval: [1, 5]
  graph fraction: 0.3
  chain length: [2, 4]
  seed: 7
}
task class: {
  name: maintenance
  arrivals: windowed
  start time: 5000
  end time: 50000
  interval: [10, 40]
  priority: [1, 9]
}
)";

std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

/// Best (highest) ops/sec across rounds: noise only ever slows a round
/// down, so the fastest round is the closest estimate of the true rate.
double BestRate(const std::vector<double>& rates) {
  return *std::max_element(rates.begin(), rates.end());
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Scenario-pipeline throughput smoke; writes "
                "BENCH_scenario.json");
  cli.AddBool("quick", false, "CI smoke workload (fewer iterations)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_scenario.json";
  }

  const int parse_iters = quick ? 200 : 2000;
  const int canon_iters = quick ? 500 : 5000;
  const int gen_iters = quick ? 20 : 100;
  const int rounds = quick ? 3 : 5;
  // Floors (ops/sec, gated in optimized builds only): a healthy build
  // clears them by well over an order of magnitude.
  constexpr double kParseFloor = 500.0;
  constexpr double kCanonFloor = 1000.0;
  constexpr double kGenTaskFloor = 50'000.0;  // generated tasks per second
#ifdef NDEBUG
  constexpr bool kGateRates = true;
#else
  constexpr bool kGateRates = false;
#endif

  const scenario::ParseResult parsed = scenario::ParseScenario(kScenarioText);
  if (!parsed.has_value()) {
    std::cerr << "bench scenario does not parse:\n"
              << scenario::Render(parsed.error()) << "\n";
    return 1;
  }
  const scenario::ScenarioSpec& spec = parsed.value();
  const std::size_t classes = spec.config.task_classes.size();
  if (classes != 3) {
    std::cerr << "expected 3 task classes, got " << classes << "\n";
    return 1;
  }

  // The generation stage needs the configuration catalogue the classes
  // draw preferred configs from (the same one a run would synthesize).
  Rng catalogue_rng(spec.config.seed);
  const resource::ConfigCatalogue catalogue = resource::ConfigCatalogue::
      Generate(spec.config.configs, ptype::Catalogue::Default(),
               catalogue_rng);

  std::vector<double> parse_rates;
  std::vector<double> canon_rates;
  std::vector<double> gen_rates;
  std::size_t tasks_per_gen = 0;
  for (int round = 0; round < rounds; ++round) {
    double start = CpuSeconds();
    std::size_t sink = 0;
    for (int i = 0; i < parse_iters; ++i) {
      sink += scenario::ParseScenario(kScenarioText).value().name.size();
    }
    double seconds = CpuSeconds() - start;
    parse_rates.push_back(static_cast<double>(parse_iters) / seconds);

    start = CpuSeconds();
    for (int i = 0; i < canon_iters; ++i) {
      sink += scenario::ScenarioHash(spec).size();
      sink += scenario::CanonicalScenario(spec).size();
    }
    seconds = CpuSeconds() - start;
    canon_rates.push_back(static_cast<double>(canon_iters) / seconds);

    start = CpuSeconds();
    std::size_t generated = 0;
    for (int i = 0; i < gen_iters; ++i) {
      const workload::MultiClassWorkload wl =
          workload::GenerateMultiClassWorkload(
              spec.config.task_classes, catalogue,
              spec.config.seed + static_cast<std::uint64_t>(i));
      generated += wl.TotalTasks();
    }
    seconds = CpuSeconds() - start;
    gen_rates.push_back(static_cast<double>(generated) / seconds);
    tasks_per_gen = generated / static_cast<std::size_t>(gen_iters);
    if (sink == 0) std::cerr << "";  // keep the stages observable
  }

  const double parse_rate = BestRate(parse_rates);
  const double canon_rate = BestRate(canon_rates);
  const double gen_rate = BestRate(gen_rates);
  const bool within_budget =
      !kGateRates || (parse_rate >= kParseFloor && canon_rate >= kCanonFloor &&
                      gen_rate >= kGenTaskFloor);

  std::cout << Format("scenario pipeline throughput ({} classes, {} tasks "
                      "per generation)\n",
                      classes, tasks_per_gen);
  std::cout << Format("  parse: {} /s (floor {}{})\n", Fixed(parse_rate, 0),
                      Fixed(kParseFloor, 0),
                      kGateRates ? "" : "; unoptimized build, ungated");
  std::cout << Format("  canonicalize + hash: {} /s (floor {})\n",
                      Fixed(canon_rate, 0), Fixed(kCanonFloor, 0));
  std::cout << Format("  multi-class generation: {} tasks/s (floor {})\n",
                      Fixed(gen_rate, 0), Fixed(kGenTaskFloor, 0));

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"scenario\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"task_classes\": {},\n", classes);
  out << Format("  \"tasks_per_generation\": {},\n", tasks_per_gen);
  out << Format("  \"parse_per_sec\": {},\n", parse_rate);
  out << Format("  \"parse_floor_per_sec\": {},\n", kParseFloor);
  out << Format("  \"canonicalize_per_sec\": {},\n", canon_rate);
  out << Format("  \"canonicalize_floor_per_sec\": {},\n", kCanonFloor);
  out << Format("  \"generation_tasks_per_sec\": {},\n", gen_rate);
  out << Format("  \"generation_floor_tasks_per_sec\": {},\n", kGenTaskFloor);
  out << Format("  \"gated\": {}\n", kGateRates ? "true" : "false");
  out << "}\n";
  if (!out.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return within_budget ? 0 : 1;
}
