// Figure 9 reproduction (200 nodes): average scheduling steps per task
// (Fig. 9a) and total scheduler workload (Fig. 9b) vs. total tasks.
//
// Paper shape: the full-reconfiguration scenario needs more scheduling
// steps per task and more total workload — its long suspension queue must
// be re-walked on every completion, while partial reconfiguration "can even
// search for a node region to map a task, which reduces the scheduling
// effort".
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using dreamsim::bench::FigureSeries;
  using dreamsim::bench::FigureSpec;
  using dreamsim::core::MetricsReport;

  const FigureSpec spec{
      "Fig. 9",
      "scheduling steps per task (9a) and total scheduler workload (9b)",
      {200},
      {FigureSeries{"sched_steps",
                    [](const MetricsReport& r) {
                      return r.avg_scheduling_steps_per_task;
                    }},
       FigureSeries{"total_workload", [](const MetricsReport& r) {
                      return static_cast<double>(r.total_scheduler_workload);
                    }}}};
  return dreamsim::bench::RunFigure(argc, argv, spec);
}
