// Structure-audit overhead smoke (DESIGN.md §12), emitted as
// machine-readable JSON so the perf trajectory can be tracked across
// commits.
//
// The auditor must be pay-for-what-you-use: with `--audit=off` the only
// residue on the simulator's hot path is one enum comparison per scheduler
// decision. That residue is not separable from runner noise directly, so
// the gate bounds it from above: an `--audit=end` run takes the identical
// hot path PLUS one full ground-truth reconstruction, and it must stay
// under 1% CPU of the off-mode baseline at the paper's 200-node scale.
// If end mode fits in 1%, the off-mode branch is far below noise.
//
// Step mode (a reconstruction after every decision) is reported as context
// and deliberately ungated — it is Debug-scale tooling, priced like a
// sanitizer, not a feature.
//
// Every mode must also leave the paper-facing metrics bit-identical: the
// auditor is read-only by construction and never charges the
// WorkloadMeter, and this bench is the executable proof.
//
// Output: BENCH_audit.json next to the executable (override with --out).
// --quick shrinks the workload for CI smoke runs. Exit status is non-zero
// if metrics diverge, the end-mode budget is breached, or an audit
// reports violations.
#include <algorithm>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

/// Process CPU time: the gate is a ~1% signal, and wall clock on a shared
/// CI runner includes scheduler steal that dwarfs it (see bench_obs).
double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

SimulationConfig BaseConfig(int tasks) {
  SimulationConfig config;  // Table II: 200 nodes, 50 configs
  config.tasks.total_tasks = tasks;
  config.seed = 42;
  // A light fault mix keeps the fault-visibility checks on real work.
  config.faults.mtbf = 200'000;
  config.faults.mttr = 20'000;
  config.tasks.max_required_time = 3000;
  config.max_suspension_retries = 10;
  return config;
}

struct TimedRun {
  MetricsReport report;
  double seconds = 0.0;
  bool audit_clean = true;
  std::string first_violation;
};

TimedRun RunOnce(const SimulationConfig& config, analysis::AuditMode mode) {
  SimulationConfig copy = config;
  copy.audit = mode;
  TimedRun run;
  const double start = CpuSeconds();
  Simulator sim(std::move(copy));
  run.report = sim.Run();
  run.seconds = CpuSeconds() - start;
  // Explicit end-state audit on every run (including off mode): this bench
  // doubles as a large-scale clean-run check for the auditor itself.
  const analysis::AuditReport audit = sim.AuditStructures();
  run.audit_clean = audit.ok();
  if (!audit.ok()) run.first_violation = audit.Render(1);
  return run;
}

bool PaperMetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  return a.completed_tasks == b.completed_tasks &&
         a.discarded_tasks == b.discarded_tasks &&
         a.suspended_ever == b.suspended_ever &&
         a.avg_wasted_area_per_task == b.avg_wasted_area_per_task &&
         a.avg_task_running_time == b.avg_task_running_time &&
         a.avg_reconfig_count_per_node == b.avg_reconfig_count_per_node &&
         a.avg_config_time_per_task == b.avg_config_time_per_task &&
         a.avg_waiting_time_per_task == b.avg_waiting_time_per_task &&
         a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
         a.total_scheduler_workload == b.total_scheduler_workload &&
         a.total_simulation_time == b.total_simulation_time &&
         a.total_reconfigurations == b.total_reconfigurations &&
         a.failures_injected == b.failures_injected &&
         a.tasks_killed == b.tasks_killed;
}

/// Directory of argv[0] (with trailing separator).
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

double OverheadPct(double base, double with) {
  return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Structure-audit overhead smoke; writes BENCH_audit.json");
  cli.AddBool("quick", false, "CI smoke workload (fewer tasks, fewer reps)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_audit.json";
  }

  const int tasks = quick ? 5000 : 20000;
  const int reps = quick ? 3 : 7;
  constexpr double kEndBudgetPct = 1.0;

  const SimulationConfig config = BaseConfig(tasks);

  // Noise discipline (same as bench_obs): each round runs off and end mode
  // back-to-back, the overhead is computed against the SAME round's
  // baseline, and gating uses the MINIMUM per-round overhead — noise is
  // additive, so the cleanest round is the closest estimate of the true
  // cost, while a genuine regression inflates every round.
  double best_off = 1e300;
  double best_end = 1e300;
  std::vector<double> end_pcts;
  TimedRun off_run;
  TimedRun end_run;
  bool audits_clean = true;
  std::string first_violation;
  for (int rep = 0; rep < reps; ++rep) {
    off_run = RunOnce(config, analysis::AuditMode::kOff);
    end_run = RunOnce(config, analysis::AuditMode::kEnd);
    best_off = std::min(best_off, off_run.seconds);
    best_end = std::min(best_end, end_run.seconds);
    end_pcts.push_back(OverheadPct(off_run.seconds, end_run.seconds));
    audits_clean = audits_clean && off_run.audit_clean && end_run.audit_clean;
    if (!audits_clean && first_violation.empty()) {
      first_violation = off_run.audit_clean ? end_run.first_violation
                                            : off_run.first_violation;
    }
  }
  const double end_pct = *std::min_element(end_pcts.begin(), end_pcts.end());
  std::sort(end_pcts.begin(), end_pcts.end());
  const double end_pct_median = end_pcts[end_pcts.size() / 2];

  // One step-mode run for context (ungated: Debug-scale tooling).
  const TimedRun step_run = RunOnce(config, analysis::AuditMode::kStep);
  audits_clean = audits_clean && step_run.audit_clean;
  if (!step_run.audit_clean && first_violation.empty()) {
    first_violation = step_run.first_violation;
  }
  const double step_pct = OverheadPct(best_off, step_run.seconds);

  const bool identical =
      PaperMetricsIdentical(off_run.report, end_run.report) &&
      PaperMetricsIdentical(off_run.report, step_run.report);
  const bool within_budget = end_pct < kEndBudgetPct;

  std::cout << Format("structure-audit overhead @ {} nodes, {} tasks\n",
                      off_run.report.total_nodes, tasks);
  std::cout << Format("  off: {}s (baseline; hot-path residue = one enum "
                      "compare per decision)\n",
                      Fixed(best_off, 3));
  std::cout << Format("  end: {}s ({}%, median {}%, budget {}%)\n",
                      Fixed(best_end, 3), Fixed(end_pct, 2),
                      Fixed(end_pct_median, 2), Fixed(kEndBudgetPct, 1));
  std::cout << Format("  step (context, ungated): {}s ({}%)\n",
                      Fixed(step_run.seconds, 3), Fixed(step_pct, 2));
  std::cout << Format("  paper metrics identical: {}\n",
                      identical ? "yes" : "NO");
  std::cout << Format("  audits clean: {}\n", audits_clean ? "yes" : "NO");
  if (!audits_clean) std::cout << "  " << first_violation << "\n";

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"audit\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"nodes\": {},\n", off_run.report.total_nodes);
  out << Format("  \"tasks\": {},\n", tasks);
  out << Format("  \"off_seconds\": {},\n", best_off);
  out << Format("  \"end_seconds\": {},\n", best_end);
  out << Format("  \"end_overhead_pct\": {},\n", end_pct);
  out << Format("  \"end_budget_pct\": {},\n", kEndBudgetPct);
  out << Format("  \"step_seconds\": {},\n", step_run.seconds);
  out << Format("  \"step_overhead_pct\": {},\n", step_pct);
  out << Format("  \"metrics_identical\": {},\n",
                identical ? "true" : "false");
  out << Format("  \"audits_clean\": {}\n", audits_clean ? "true" : "false");
  out << "}\n";
  if (!out.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical && within_budget && audits_clean ? 0 : 1;
}
