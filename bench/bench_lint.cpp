// Lint-engine throughput gate, emitted as machine-readable JSON so the
// static-analysis cost stays visible across commits.
//
// The engine runs on every CI push and on developer loops, so it must be
// effectively free: the gate requires a full-repo scan (src, tools,
// tests, bench — the same tree CI lints) to finish in under 2 seconds of
// wall clock, and the tree itself to be clean (zero findings — a dirty
// tree is a real finding, not a perf artifact, and fails here too so the
// snapshot numbers always describe a clean baseline).
//
// The finding-count snapshot (files scanned, rules run) rides along so a
// rule-set change that silently stops scanning half the tree shows up as
// a files/rules drop in the JSON diff, not as a mysteriously faster run.
//
// Output: BENCH_lint.json next to the executable (override with --out).
// Exit status is non-zero on findings, a budget breach, or engine error.
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

using dreamsim::lint::BuiltinRules;
using dreamsim::lint::Rule;
using dreamsim::lint::RunLint;
using dreamsim::lint::RunResult;

constexpr double kBudgetSeconds = 2.0;

double WallSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = DREAMSIM_REPO_ROOT;
  // Default next to the executable, like the other BENCH_*.json emitters.
  std::string self = argv[0];
  const std::size_t slash = self.find_last_of('/');
  const std::string bin_dir =
      slash == std::string::npos ? "" : self.substr(0, slash + 1);
  std::string out_path = bin_dir + "BENCH_lint.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      // Accepted for CI-harness uniformity; the full scan IS the quick
      // mode (the budget gates it at 2 s).
    } else {
      std::cerr << "usage: bench_lint [--root <repo>] [--out <json>] "
                   "[--quick]\n";
      return 2;
    }
  }

  const std::vector<std::string> subdirs = {"src", "tools", "tests", "bench"};
  RunResult result;
  const double begin = WallSeconds();
  try {
    result = RunLint(root, subdirs);
  } catch (const std::exception& e) {
    std::cerr << "bench_lint: engine error: " << e.what() << "\n";
    return 2;
  }
  const double seconds = WallSeconds() - begin;

  const std::size_t rules = BuiltinRules().size();
  const bool clean = result.errors == 0 && result.warnings == 0;
  const bool in_budget = seconds < kBudgetSeconds;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"lint\",\n"
      << "  \"root\": \"" << root << "\",\n"
      << "  \"files\": " << result.files << ",\n"
      << "  \"rules\": " << rules << ",\n"
      << "  \"findings\": " << result.findings.size() << ",\n"
      << "  \"errors\": " << result.errors << ",\n"
      << "  \"warnings\": " << result.warnings << ",\n"
      << "  \"wall_seconds\": " << Fixed(seconds, 4) << ",\n"
      << "  \"budget_seconds\": " << Fixed(kBudgetSeconds, 1) << ",\n"
      << "  \"gate\": {\n"
      << "    \"clean\": " << (clean ? "true" : "false") << ",\n"
      << "    \"in_budget\": " << (in_budget ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  out.close();

  std::cout << "bench_lint: " << result.files << " files, " << rules
            << " rules, " << result.findings.size() << " finding(s) in "
            << Fixed(seconds, 3) << "s (budget " << Fixed(kBudgetSeconds, 1)
            << "s) -> " << out_path << "\n";
  if (!clean) {
    std::cerr << "bench_lint: tree is not clean; run dreamsim_lint for the "
                 "finding list\n";
    return 1;
  }
  if (!in_budget) {
    std::cerr << "bench_lint: full-repo scan blew the " << Fixed(kBudgetSeconds, 1)
              << "s budget\n";
    return 1;
  }
  return 0;
}
