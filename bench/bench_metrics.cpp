// Live-metrics overhead smoke (DESIGN.md §16), emitted as machine-readable
// JSON so the perf trajectory can be tracked across commits.
//
// The metrics registry must be pay-for-what-you-use: with the registry
// disabled a hot-path hook is one relaxed atomic load plus a branch (gated
// at < 5 ns per hook in optimized builds), and each enablement step — the
// registry recording alone, and registry + interval JSONL snapshots to
// disk — must cost under 5% CPU on its own at the paper's 200-node scale
// while leaving every paper-facing metric bit-identical to the unobserved
// run (the §9 pure-observer contract).
//
// Output: BENCH_metrics.json next to the executable (override with --out).
// --quick shrinks the workload for CI smoke runs. Exit status is non-zero
// if metrics diverge or an overhead budget is breached.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

/// Process CPU time: the gate is a few percent on a single-threaded
/// workload, and wall clock on a shared runner is dominated by steal.
double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

SimulationConfig BaseConfig(int tasks) {
  SimulationConfig config;  // Table II: 200 nodes, 50 configs
  config.tasks.total_tasks = tasks;
  config.enable_monitoring = true;
  config.seed = 42;
  return config;
}

enum class MetricsLevel {
  kOff,        // registry disabled: the zero-overhead baseline
  kRegistry,   // registry enabled, no exposition (hooks record only)
  kSnapshots,  // registry + interval JSONL snapshots to disk
};

/// One timed run at the given level. Snapshot files go to `scratch_prefix`
/// and are deleted afterwards (only the timing matters).
MetricsReport RunOnce(const SimulationConfig& config, MetricsLevel level,
                      const std::string& scratch_prefix, double& seconds) {
  const std::string snap_path = scratch_prefix + ".metrics.jsonl";
  SimulationConfig copy = config;
  obs::MetricsRegistry::SetEnabled(level != MetricsLevel::kOff);
  obs::MetricsRegistry::Instance().Reset();
  const double start = CpuSeconds();
  Simulator sim(std::move(copy));
  std::unique_ptr<obs::MetricsSnapshotWriter> writer;
  if (level == MetricsLevel::kSnapshots) {
    // The CLI's default snapshot cadence: one snapshot per ~75 tasks of
    // horizon on a Table II run, so the gate prices what users get.
    writer = std::make_unique<obs::MetricsSnapshotWriter>(
        snap_path, obs::MetricsFormat::kJson, Tick{10000});
    sim.SetEventLogger(
        [&writer](const core::SimEvent& e) { writer->OnEvent(e); });
  }
  const MetricsReport report = sim.Run();
  if (writer) writer->Finish(sim.kernel().now());
  seconds = CpuSeconds() - start;
  obs::MetricsRegistry::SetEnabled(false);
  obs::MetricsRegistry::Instance().Reset();
  if (writer) std::remove(snap_path.c_str());
  return report;
}

/// Direct measurement of the disabled-hook claim: one relaxed atomic load
/// plus a predictable branch, no clock read, no allocation. Returns
/// nanoseconds per hook amortized over a tight loop.
double DisabledHookNs() {
  constexpr std::uint64_t kIters = 20'000'000;
  obs::MetricsRegistry::SetEnabled(false);
  const double start = CpuSeconds();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    obs::MetricInc(obs::MetricId::kEvqPushed);
  }
  const double seconds = CpuSeconds() - start;
  return seconds / static_cast<double>(kIters) * 1e9;
}

bool PaperMetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  return a.completed_tasks == b.completed_tasks &&
         a.discarded_tasks == b.discarded_tasks &&
         a.suspended_ever == b.suspended_ever &&
         a.avg_wasted_area_per_task == b.avg_wasted_area_per_task &&
         a.avg_task_running_time == b.avg_task_running_time &&
         a.avg_reconfig_count_per_node == b.avg_reconfig_count_per_node &&
         a.avg_config_time_per_task == b.avg_config_time_per_task &&
         a.avg_waiting_time_per_task == b.avg_waiting_time_per_task &&
         a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
         a.total_scheduler_workload == b.total_scheduler_workload &&
         a.total_simulation_time == b.total_simulation_time &&
         a.total_reconfigurations == b.total_reconfigurations;
}

std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

double OverheadPct(double base, double with) {
  return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Live-metrics overhead smoke; writes BENCH_metrics.json");
  cli.AddBool("quick", false, "CI smoke workload (fewer tasks, fewer reps)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_metrics.json";
  }
  const std::string scratch_prefix = out_path + ".scratch";

  // Quick mode keeps full-run round count: the gate is min-across-rounds,
  // and short rounds need MORE samples, not fewer, to shed runner noise.
  const int tasks = quick ? 5000 : 20000;
  const int reps = 7;
  constexpr double kFeatureBudgetPct = 5.0;
  constexpr double kDisabledHookBudgetNs = 5.0;
  // The hook budget is an absolute latency, so it only means anything in an
  // optimized build; the relative gates hold anywhere.
#ifdef NDEBUG
  constexpr bool kGateHook = true;
#else
  constexpr bool kGateHook = false;
#endif

  const SimulationConfig config = BaseConfig(tasks);

  // Same noise discipline as bench_obs: every level runs back-to-back per
  // round against the same round's baseline, and the gate takes the MINIMUM
  // per-level overhead across rounds (noise is additive; a real regression
  // inflates every round, including the minimum).
  constexpr MetricsLevel kLevels[] = {MetricsLevel::kOff,
                                      MetricsLevel::kRegistry,
                                      MetricsLevel::kSnapshots};
  constexpr std::size_t kLevelCount = std::size(kLevels);
  double best[kLevelCount];
  std::vector<std::vector<double>> pct(kLevelCount);
  MetricsReport report[kLevelCount];
  std::fill(best, best + kLevelCount, 1e300);
  for (int rep = 0; rep < reps; ++rep) {
    double seconds[kLevelCount];
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      report[i] = RunOnce(config, kLevels[i], scratch_prefix, seconds[i]);
      best[i] = std::min(best[i], seconds[i]);
    }
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      pct[i].push_back(OverheadPct(seconds[0], seconds[i]));
    }
  }
  const auto min_pct = [&pct](std::size_t level) {
    return *std::min_element(pct[level].begin(), pct[level].end());
  };
  const auto median_pct = [&pct](std::size_t level) {
    std::vector<double> v = pct[level];
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };

  const double hook_ns = DisabledHookNs();

  bool identical = true;
  for (std::size_t i = 1; i < kLevelCount; ++i) {
    identical = identical && PaperMetricsIdentical(report[0], report[i]);
  }
  const double off_seconds = best[0];
  const double registry_pct = min_pct(1);
  const double snapshots_pct = min_pct(2);
  const bool within_budget = registry_pct < kFeatureBudgetPct &&
                             snapshots_pct < kFeatureBudgetPct &&
                             (!kGateHook || hook_ns < kDisabledHookBudgetNs);

  std::cout << Format("live-metrics overhead @ {} nodes, {} tasks\n",
                      report[0].total_nodes, tasks);
  std::cout << Format("  off: {}s (baseline, per-feature budget {}%)\n",
                      Fixed(off_seconds, 3), Fixed(kFeatureBudgetPct, 1));
  std::cout << Format("  registry enabled: {}s ({}%, median {}%)\n",
                      Fixed(best[1], 3), Fixed(registry_pct, 2),
                      Fixed(median_pct(1), 2));
  std::cout << Format("  registry + jsonl snapshots: {}s ({}%, median {}%)\n",
                      Fixed(best[2], 3), Fixed(snapshots_pct, 2),
                      Fixed(median_pct(2), 2));
  std::cout << Format("  disabled hook: {} ns (budget {} ns{})\n",
                      Fixed(hook_ns, 2), Fixed(kDisabledHookBudgetNs, 1),
                      kGateHook ? "" : "; unoptimized build, ungated");
  std::cout << Format("  paper metrics identical: {}\n",
                      identical ? "yes" : "NO");

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"metrics\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"nodes\": {},\n", report[0].total_nodes);
  out << Format("  \"tasks\": {},\n", tasks);
  out << Format("  \"off_seconds\": {},\n", off_seconds);
  out << Format("  \"registry_seconds\": {},\n", best[1]);
  out << Format("  \"registry_overhead_pct\": {},\n", registry_pct);
  out << Format("  \"snapshots_seconds\": {},\n", best[2]);
  out << Format("  \"snapshots_overhead_pct\": {},\n", snapshots_pct);
  out << Format("  \"feature_budget_pct\": {},\n", kFeatureBudgetPct);
  out << Format("  \"disabled_hook_ns\": {},\n", hook_ns);
  out << Format("  \"disabled_hook_budget_ns\": {},\n", kDisabledHookBudgetNs);
  out << Format("  \"metrics_identical\": {}\n",
                identical ? "true" : "false");
  out << "}\n";
  if (!out.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical && within_budget ? 0 : 1;
}
