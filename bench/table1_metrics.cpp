// Table I reproduction: one full-vs-partial run at the paper's default
// parameters, printing every Table I metric side by side and writing
// table1_metrics.csv next to the binary.
//
//   ./bench/table1_metrics [--nodes N] [--tasks N] [--seed S] [--csv PATH]
#include <fstream>
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli("Table I: all DReAMSim performance metrics, full vs partial.");
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("tasks", 10000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  cli.AddString("csv", "", "output CSV path (empty = none)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::vector<core::MetricsReport> reports;
  for (const auto mode :
       {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.mode = mode;
    config.label = std::string(sched::ToString(mode));
    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.Run());
  }

  std::cout << "=== Table I: DReAMSim performance metrics ===\n"
            << core::RenderComparisonTable(reports);

  const std::string csv_path = cli.GetString("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    core::WriteCsvReports(out, reports);
    std::cout << "\nwrote " << csv_path << "\n";
  }
  return 0;
}
