// Micro-benchmarks (google-benchmark) for the dynamic data structures the
// paper motivates in Sec. IV-B: per-configuration idle/busy lists, the
// suspension queue, the resource-store scheduler queries, and the event
// queue. These quantify the constant factors behind the counted "search
// steps" of Table I.
#include <benchmark/benchmark.h>

#include "resource/store.hpp"
#include "resource/suspension_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace dreamsim;
using resource::ConfigCatalogue;
using resource::Configuration;
using resource::EntryList;
using resource::EntryRef;
using resource::ResourceStore;
using resource::SuspensionQueue;
using resource::WorkloadMeter;

ConfigCatalogue MakeCatalogue(int count, Rng& rng) {
  ConfigCatalogue c;
  for (int i = 0; i < count; ++i) {
    Configuration cfg;
    cfg.required_area = rng.uniform_int(200, 2000);
    cfg.config_time = rng.uniform_int(10, 20);
    c.Add(cfg);
  }
  return c;
}

void BM_EntryListAddRemove(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  EntryList list;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < size; ++i) {
    list.Add(EntryRef{NodeId{i}, 0}, meter);
  }
  for (auto _ : state) {
    list.Add(EntryRef{NodeId{size}, 0}, meter);
    benchmark::DoNotOptimize(list.Remove(EntryRef{NodeId{size}, 0}, meter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntryListAddRemove)->Range(8, 4096);

void BM_EntryListFindMin(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  EntryList list;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < size; ++i) {
    list.Add(EntryRef{NodeId{(i * 31) % size}, 0}, meter);
  }
  for (auto _ : state) {
    auto best = list.FindMin(
        [](EntryRef e) { return static_cast<long long>(e.node.value()); },
        [](EntryRef) { return true; }, meter,
        resource::StepKind::kSchedulingSearch);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EntryListFindMin)->Range(8, 4096);

void BM_SuspensionQueueScan(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  SuspensionQueue queue;
  WorkloadMeter meter;
  for (std::uint32_t i = 0; i < size; ++i) {
    (void)queue.Add(TaskId{i}, meter);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Contains(TaskId{size - 1}, meter));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuspensionQueueScan)->Range(64, 65536);

void BM_StoreFindBestIdleEntry(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  Rng rng(1);
  ResourceStore store(MakeCatalogue(50, rng));
  for (int i = 0; i < nodes; ++i) {
    (void)store.AddNode(rng.uniform_int(1000, 4000));
  }
  // Configure config 0 onto every node that fits it.
  const Area needed = store.configs().Get(ConfigId{0}).required_area;
  for (const resource::Node& n : store.nodes()) {
    if (n.available_area() >= needed) {
      (void)store.Configure(n.id(), ConfigId{0});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.FindBestIdleEntry(ConfigId{0}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreFindBestIdleEntry)->Range(16, 1024);

void BM_StoreFindAnyIdleNode(benchmark::State& state) {
  const auto nodes = static_cast<int>(state.range(0));
  Rng rng(2);
  ResourceStore store(MakeCatalogue(50, rng));
  for (int i = 0; i < nodes; ++i) {
    const NodeId id = store.AddNode(rng.uniform_int(1000, 4000));
    // Pack nodes with small configurations, leave entries idle.
    while (store.node(id).available_area() >= 500) {
      const auto cfg = ConfigId{static_cast<std::uint32_t>(
          rng.uniform_int(0, 49))};
      if (store.configs().Get(cfg).required_area <=
          store.node(id).available_area()) {
        (void)store.Configure(id, cfg);
      } else {
        break;
      }
    }
  }
  for (auto _ : state) {
    // Ask for more area than any single node's spare: forces the scan.
    benchmark::DoNotOptimize(store.FindAnyIdleNode(3900));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreFindAnyIdleNode)->Range(16, 1024);

// --- Indexed-vs-scan scheduler queries (DESIGN.md "Scheduler index") ---
//
// range(0) = node count, range(1) = 0 (reference counted scan) / 1 (O(log N)
// index). Both modes return identical decisions and charge identical step
// counts to the WorkloadMeter; these benchmarks measure the host-work gap
// the index buys. bench_store_index emits the same comparison as JSON.

/// A mixed store population: ~20% blank nodes, the rest holding 1-3
/// configured entries with roughly half of them busy. Deterministic, so the
/// scan and indexed variants of one benchmark see identical state.
ResourceStore MakeQueryStore(int nodes, bool indexed) {
  Rng rng(8);
  ResourceStore store(MakeCatalogue(50, rng));
  store.SetIndexed(indexed);
  for (int i = 0; i < nodes; ++i) {
    (void)store.AddNode(rng.uniform_int(1000, 4000));
  }
  std::uint32_t next_task = 0;
  for (int i = 0; i < nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (rng.uniform_int(0, 9) < 2) continue;  // stays blank
    const std::int64_t entries = rng.uniform_int(1, 3);
    for (std::int64_t k = 0; k < entries; ++k) {
      const auto cfg =
          ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 49))};
      if (store.configs().Get(cfg).required_area >
          store.node(id).available_area()) {
        continue;
      }
      const EntryRef entry = store.Configure(id, cfg);
      if (rng.uniform_int(0, 1) == 0) {
        store.AssignTask(entry, TaskId{next_task++});
      }
    }
  }
  return store;
}

void QuerySizes(benchmark::internal::Benchmark* b) {
  for (const int nodes : {1000, 10000, 100000}) {
    b->Args({nodes, 0});
    b->Args({nodes, 1});
  }
}

void FinishQueryBench(benchmark::State& state) {
  state.SetLabel(state.range(1) != 0 ? "indexed" : "scan");
  state.SetItemsProcessed(state.iterations());
}

void BM_QueryFindBestBlankNode(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.FindBestBlankNode(2500));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryFindBestBlankNode)->Apply(QuerySizes);

void BM_QueryFindBestPartiallyBlankNode(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.FindBestPartiallyBlankNode(1200));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryFindBestPartiallyBlankNode)->Apply(QuerySizes);

void BM_QueryFindAnyIdleNode(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    // Larger than any node's TotalArea: the scan's (and the charge model's)
    // worst case — every node and every live entry is visited.
    benchmark::DoNotOptimize(store.FindAnyIdleNode(4100));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryFindAnyIdleNode)->Apply(QuerySizes);

void BM_QueryAnyBusyNodeCouldFit(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    // No node is this large, so the scan visits every node.
    benchmark::DoNotOptimize(store.AnyBusyNodeCouldFit(4100));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryAnyBusyNodeCouldFit)->Apply(QuerySizes);

void BM_QueryFindBestIdleConfiguredNode(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.FindBestIdleConfiguredNode(2000));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryFindBestIdleConfiguredNode)->Apply(QuerySizes);

void BM_QueryFindRankedHostNode(benchmark::State& state) {
  ResourceStore store =
      MakeQueryStore(static_cast<int>(state.range(0)), state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.FindRankedHostNode(1500, resource::HostRank::kBestFit));
  }
  FinishQueryBench(state);
}
BENCHMARK(BM_QueryFindRankedHostNode)->Apply(QuerySizes);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  Rng rng(3);
  for (int i = 0; i < depth; ++i) {
    (void)queue.Push(rng.uniform_int(0, 1 << 20),
                     sim::EventPriority::kArrival, [] {});
  }
  for (auto _ : state) {
    (void)queue.Push(rng.uniform_int(0, 1 << 20),
                     sim::EventPriority::kArrival, [] {});
    auto popped = queue.Pop();
    benchmark::DoNotOptimize(popped.tick);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 65536);

void BM_RngCore(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.rand_int32());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngCore);

void BM_RngNormalZiggurat(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNormalZiggurat);

void BM_RngGamma(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gamma(2.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngGamma);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(7);
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(lambda));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngPoisson)->Arg(4)->Arg(40)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
