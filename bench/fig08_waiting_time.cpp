// Figure 8 reproduction: average waiting time per task (Eq. 8/9) vs. total
// tasks generated, for 100 nodes (Fig. 8a) and 200 nodes (Fig. 8b).
//
// Paper shape: the full-reconfiguration series waits far longer (no way to
// co-locate tasks), and the 100-node system waits longer than the 200-node
// one.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using dreamsim::bench::FigureSeries;
  using dreamsim::bench::FigureSpec;
  using dreamsim::core::MetricsReport;

  const FigureSpec spec{
      "Fig. 8",
      "average waiting time per task (full vs partial)",
      {100, 200},
      {FigureSeries{"waiting_time", [](const MetricsReport& r) {
                      return r.avg_waiting_time_per_task;
                    }}}};
  return dreamsim::bench::RunFigure(argc, argv, spec);
}
