// Observability overhead smoke (DESIGN.md §11), emitted as machine-readable
// JSON so the perf trajectory can be tracked across commits.
//
// The run-trace & telemetry layer must be pay-for-what-you-use: with every
// observability switch off the simulator keeps its original paths (the only
// residue is one relaxed atomic load per profiler hook), and each switch —
// JSONL event tracing to disk, interval time-series sampling — must cost
// under 5% CPU on its own at the paper's 200-node scale while leaving
// every paper-facing metric bit-identical to the unobserved run.
//
// Output: BENCH_obs.json next to the executable (override with --out).
// --quick shrinks the workload for CI smoke runs. Exit status is non-zero
// if metrics diverge or an overhead budget is breached.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <iterator>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/profiler.hpp"
#include "obs/run_tracer.hpp"
#include "obs/timeline.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

/// Process CPU time. The bench gates a single-threaded workload at a few
/// percent, so it measures the CPU the process actually burned — wall
/// clock on a shared CI runner includes scheduler steal, which dwarfs the
/// signal being gated.
double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

SimulationConfig BaseConfig(int tasks) {
  SimulationConfig config;  // Table II: 200 nodes, 50 configs
  config.tasks.total_tasks = tasks;
  // Keep the tool-default monitoring on: it is what every CLI run pays, and
  // the state observer shares the monitor's per-event SystemSnapshot, so
  // this measures the observability layer's own cost (serialization +
  // sampling) rather than re-billing it for the O(nodes) snapshot the
  // monitor already takes.
  config.enable_monitoring = true;
  config.seed = 42;
  return config;
}

enum class ObsLevel {
  kOff,       // every switch off: the zero-overhead baseline
  kTracer,    // JSONL run tracer to disk (--run-trace)
  kSampler,   // time-series sampler to disk (--timeline-out)
  kFull,      // tracer + sampler together
  kProfiler,  // phase profiler only (two clock reads per timed scope)
};

/// One timed run at the given observability level. Trace artifacts go to
/// `scratch_prefix` and are deleted afterwards (only the timing matters).
MetricsReport RunOnce(const SimulationConfig& config, ObsLevel level,
                      const std::string& scratch_prefix, double& seconds) {
  const std::string trace_path = scratch_prefix + ".trace.jsonl";
  const std::string timeline_path = scratch_prefix + ".timeline.csv";
  const bool trace = level == ObsLevel::kTracer || level == ObsLevel::kFull;
  const bool sample = level == ObsLevel::kSampler || level == ObsLevel::kFull;
  SimulationConfig copy = config;
  obs::PhaseProfiler::SetEnabled(level == ObsLevel::kProfiler);
  obs::PhaseProfiler::Instance().Reset();
  const double start = CpuSeconds();
  Simulator sim(std::move(copy));
  std::unique_ptr<obs::RunTracer> tracer;
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  if (trace) {
    obs::RunTracer::RunInfo info;
    info.label = "bench_obs";
    info.mode = ToString(sim.config().mode);
    info.seed = sim.config().seed;
    info.nodes = sim.store().node_count();
    tracer = std::make_unique<obs::RunTracer>(trace_path,
                                              obs::TraceFormat::kJsonl, info);
    sim.SetEventLogger(
        [&tracer](const core::SimEvent& e) { tracer->OnEvent(e); });
  }
  if (sample) {
    sampler = std::make_unique<obs::TimeSeriesSampler>(timeline_path, 100);
    sim.SetStateObserver(
        [&sampler](const core::StateSample& s) { sampler->Observe(s); });
  }
  const MetricsReport report = sim.Run();
  if (tracer) tracer->Finish(sim.kernel().now());
  if (sampler) sampler->Finish(sim.kernel().now());
  seconds = CpuSeconds() - start;
  obs::PhaseProfiler::SetEnabled(false);
  if (trace) std::remove(trace_path.c_str());
  if (sample) std::remove(timeline_path.c_str());
  return report;
}

/// Direct measurement of the "~0% disabled" claim: a disabled profiler
/// hook is one relaxed atomic load and a branch — no clock read. Returns
/// nanoseconds per hook, amortized over a tight loop.
double DisabledHookNs() {
  constexpr std::uint64_t kIters = 20'000'000;
  obs::PhaseProfiler::SetEnabled(false);
  const double start = CpuSeconds();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    const obs::ScopedPhaseTimer timer(obs::ProfPhase::kStoreQuery);
  }
  const double seconds = CpuSeconds() - start;
  return seconds / static_cast<double>(kIters) * 1e9;
}

bool PaperMetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  return a.completed_tasks == b.completed_tasks &&
         a.discarded_tasks == b.discarded_tasks &&
         a.suspended_ever == b.suspended_ever &&
         a.avg_wasted_area_per_task == b.avg_wasted_area_per_task &&
         a.avg_task_running_time == b.avg_task_running_time &&
         a.avg_reconfig_count_per_node == b.avg_reconfig_count_per_node &&
         a.avg_config_time_per_task == b.avg_config_time_per_task &&
         a.avg_waiting_time_per_task == b.avg_waiting_time_per_task &&
         a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
         a.total_scheduler_workload == b.total_scheduler_workload &&
         a.total_simulation_time == b.total_simulation_time &&
         a.total_reconfigurations == b.total_reconfigurations;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable regardless of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

double OverheadPct(double base, double with) {
  return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Observability overhead smoke; writes BENCH_obs.json");
  cli.AddBool("quick", false, "CI smoke workload (fewer tasks, fewer reps)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_obs.json";
  }
  const std::string scratch_prefix = out_path + ".scratch";

  const int tasks = quick ? 5000 : 20000;
  const int reps = quick ? 3 : 7;
  // Gates. Each observability switch is independent and each must stay
  // under 5% CPU on its own; a disabled profiler hook must stay within a
  // few ns (one relaxed atomic load + branch — the "~0% disabled" claim).
  // The all-on run and the profiler-enabled run are reported for context:
  // the former is roughly the sum of its parts, and precise per-phase
  // timing costs two steady_clock reads per scope by design — clock-read
  // latency is a property of the host, not of this code.
  constexpr double kFeatureBudgetPct = 5.0;
  constexpr double kDisabledHookBudgetNs = 5.0;
  // The hook budget is an absolute latency, so it only means anything in
  // an optimized build (Debug trees run the hook interpreter-slow without
  // saying anything about the product); the relative gates hold anywhere.
#ifdef NDEBUG
  constexpr bool kGateHook = true;
#else
  constexpr bool kGateHook = false;
#endif

  const SimulationConfig config = BaseConfig(tasks);

  // Noise discipline for shared runners: each round runs every level
  // back-to-back and the overhead of a level is computed against the SAME
  // round's baseline — adjacent runs share machine conditions, so slow
  // patches mostly cancel out of the ratio. Gating uses the MINIMUM of the
  // per-round overheads: noise is additive, so the cleanest round is the
  // closest estimate of the true cost, and a genuine code regression
  // inflates every round — including the minimum — and still trips the
  // budget. The median is reported alongside as context.
  constexpr ObsLevel kLevels[] = {ObsLevel::kOff, ObsLevel::kTracer,
                                  ObsLevel::kSampler, ObsLevel::kFull,
                                  ObsLevel::kProfiler};
  constexpr std::size_t kLevelCount = std::size(kLevels);
  double best[kLevelCount];
  std::vector<std::vector<double>> pct(kLevelCount);
  MetricsReport report[kLevelCount];
  std::fill(best, best + kLevelCount, 1e300);
  for (int rep = 0; rep < reps; ++rep) {
    double seconds[kLevelCount];
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      report[i] = RunOnce(config, kLevels[i], scratch_prefix, seconds[i]);
      best[i] = std::min(best[i], seconds[i]);
    }
    for (std::size_t i = 0; i < kLevelCount; ++i) {
      pct[i].push_back(OverheadPct(seconds[0], seconds[i]));
    }
  }
  const auto min_pct = [&pct](std::size_t level) {
    return *std::min_element(pct[level].begin(), pct[level].end());
  };
  const auto median_pct = [&pct](std::size_t level) {
    std::vector<double> v = pct[level];
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };

  const double hook_ns = DisabledHookNs();

  bool identical = true;
  for (std::size_t i = 1; i < kLevelCount; ++i) {
    identical = identical && PaperMetricsIdentical(report[0], report[i]);
  }
  const double off_seconds = best[0];
  const double tracer_pct = min_pct(1);
  const double sampler_pct = min_pct(2);
  const double full_pct = min_pct(3);
  const double prof_pct = min_pct(4);
  const bool within_budget = tracer_pct < kFeatureBudgetPct &&
                             sampler_pct < kFeatureBudgetPct &&
                             (!kGateHook || hook_ns < kDisabledHookBudgetNs);

  std::cout << Format("observability overhead @ {} nodes, {} tasks\n",
                      report[0].total_nodes, tasks);
  std::cout << Format("  off: {}s (baseline, per-feature budget {}%)\n",
                      Fixed(off_seconds, 3), Fixed(kFeatureBudgetPct, 1));
  std::cout << Format("  run tracer (jsonl): {}s ({}%, median {}%)\n",
                      Fixed(best[1], 3), Fixed(tracer_pct, 2),
                      Fixed(median_pct(1), 2));
  std::cout << Format("  timeline sampler: {}s ({}%, median {}%)\n",
                      Fixed(best[2], 3), Fixed(sampler_pct, 2),
                      Fixed(median_pct(2), 2));
  std::cout << Format("  disabled hook: {} ns (budget {} ns{})\n",
                      Fixed(hook_ns, 2), Fixed(kDisabledHookBudgetNs, 1),
                      kGateHook ? "" : "; unoptimized build, ungated");
  std::cout << Format("  tracer+sampler (context, ungated): {}s ({}%)\n",
                      Fixed(best[3], 3), Fixed(full_pct, 2));
  std::cout << Format("  profiler enabled (context, ungated): {}s ({}%)\n",
                      Fixed(best[4], 3), Fixed(prof_pct, 2));
  std::cout << Format("  paper metrics identical: {}\n",
                      identical ? "yes" : "NO");

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"obs\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"nodes\": {},\n", report[0].total_nodes);
  out << Format("  \"tasks\": {},\n", tasks);
  out << Format("  \"off_seconds\": {},\n", off_seconds);
  out << Format("  \"tracer_seconds\": {},\n", best[1]);
  out << Format("  \"tracer_overhead_pct\": {},\n", tracer_pct);
  out << Format("  \"sampler_seconds\": {},\n", best[2]);
  out << Format("  \"sampler_overhead_pct\": {},\n", sampler_pct);
  out << Format("  \"feature_budget_pct\": {},\n", kFeatureBudgetPct);
  out << Format("  \"disabled_hook_ns\": {},\n", hook_ns);
  out << Format("  \"disabled_hook_budget_ns\": {},\n", kDisabledHookBudgetNs);
  out << Format("  \"full_seconds\": {},\n", best[3]);
  out << Format("  \"full_overhead_pct\": {},\n", full_pct);
  out << Format("  \"profiler_seconds\": {},\n", best[4]);
  out << Format("  \"profiler_overhead_pct\": {},\n", prof_pct);
  out << Format("  \"metrics_identical\": {}\n",
                identical ? "true" : "false");
  out << "}\n";
  if (!out.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical && within_budget ? 0 : 1;
}
