// Million-node scale-out benchmark for the sharded parallel simulation
// kernel (DESIGN.md §13), emitted as machine-readable JSON so the perf
// trajectory can be tracked across commits.
//
// Two layers:
//   1. Shard sweep: end-to-end Simulator wall-clock on a saturating
//      large-cluster workload, sequential scan kernel (shards=1) vs the
//      sharded scan kernel at K in {2, 4, 8}, plus a cross-check that the
//      paper-facing metrics (scheduling steps, scheduler workload,
//      placements) are bit-identical at every K — the determinism contract.
//   2. Trajectory: sharded-indexed runs at increasing scale toward the
//      million-node / ten-million-task point (--big runs the full point;
//      the default stops at 100k nodes so the bench stays minutes-scale).
//
// The scheduler-phase breakdown of the sequential and best sharded runs is
// captured with the PhaseProfiler (host wall time; never the
// WorkloadMeter).
//
// Output: BENCH_scale.json next to the executable (override with --out).
// --quick shrinks the grid for CI smoke runs. Exit status 1 unless every
// sharded run's metrics are bit-identical to sequential AND the best
// K >= 4 speedup is >= 1.0 (the CI gate; multi-core runners should see the
// fork-join win on top of the single-pass batching).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "obs/profiler.hpp"
#include "resource/shard_engine.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// A cluster saturated well past its concurrent capacity: arrivals every
/// tick, execution times longer than the arrival span, and a bounded
/// suspension queue. Decisions routinely fall through every scheduler
/// phase, which is exactly the regime where the O(N) phase walks dominate.
SimulationConfig ScaleConfig(int nodes, int tasks, std::size_t shards,
                             bool indexed) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.tasks.total_tasks = tasks;
  config.tasks.min_interval = 1;
  config.tasks.max_interval = 2;
  config.tasks.min_required_time = 50000;
  config.tasks.max_required_time = 100000;
  config.suspension_capacity = 256;
  config.max_suspension_retries = 6;
  config.scheduler_index = indexed;
  config.shards = shards;
  config.enable_monitoring = false;
  config.seed = 42;
  return config;
}

struct ScaleRun {
  double seconds = 0.0;
  std::size_t pool_threads = 1;  // actual ShardPool size (1 = sequential)
  MetricsReport report;
};

ScaleRun RunScale(const SimulationConfig& config) {
  Simulator sim(config);  // setup (node generation) outside the timer
  ScaleRun run;
  const resource::ShardEngine* engine = sim.store().shard_engine();
  run.pool_threads = engine != nullptr ? engine->threads() : 1;
  const auto start = Clock::now();
  run.report = sim.Run();
  run.seconds = SecondsSince(start);
  return run;
}

/// The determinism contract, checked on the paper-facing aggregates.
bool MetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  bool same = a.scheduling_steps_total == b.scheduling_steps_total &&
              a.housekeeping_steps_total == b.housekeeping_steps_total &&
              a.total_scheduler_workload == b.total_scheduler_workload &&
              a.completed_tasks == b.completed_tasks &&
              a.discarded_tasks == b.discarded_tasks &&
              a.suspended_ever == b.suspended_ever &&
              a.total_reconfigurations == b.total_reconfigurations &&
              a.total_simulation_time == b.total_simulation_time;
  for (int k = 0; k < 5; ++k) {
    same = same && a.placements_by_kind[k] == b.placements_by_kind[k];
  }
  return same;
}

/// Best-of-`reps` wall time, so one noisy run cannot flip the speedup
/// gate. Also asserts repeated runs report identical metrics (determinism
/// across invocations, not just across shard counts).
ScaleRun RunBest(const SimulationConfig& config, int reps) {
  ScaleRun best = RunScale(config);
  for (int r = 1; r < reps; ++r) {
    const ScaleRun again = RunScale(config);
    if (!MetricsIdentical(best.report, again.report)) {
      std::cerr << "error: repeated run diverged (nondeterministic kernel)\n";
      std::exit(1);
    }
    if (again.seconds < best.seconds) best.seconds = again.seconds;
  }
  return best;
}

struct SweepRow {
  std::size_t shards = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  bool metrics_identical = true;
};

struct TrajectoryRow {
  int nodes = 0;
  int tasks = 0;
  std::size_t shards = 1;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  double tasks_per_second = 0.0;
};

struct PhaseRow {
  std::string run;
  std::string phase;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

struct ReplicationRow {
  std::uint64_t seed = 0;
  double seconds = 0.0;
  std::uint64_t completed = 0;
};

struct ReplicationSummary {
  int count = 0;
  double wall_seconds = 0.0;
  std::uint64_t total_tasks = 0;
  double aggregate_tasks_per_second = 0.0;
  std::vector<ReplicationRow> rows;
};

/// `count` independent replications of the same scenario under disjoint
/// seeds, run CONCURRENTLY (one std::thread each, shards=1 so the kernels
/// stay single-threaded and do not oversubscribe each other's pools). The
/// aggregate throughput is total tasks over the whole wall-clock span —
/// the "many seeds at once" mode a parameter sweep actually runs in.
ReplicationSummary RunReplications(int count, int nodes, int tasks) {
  ReplicationSummary summary;
  summary.count = count;
  summary.rows.resize(static_cast<std::size_t>(count));
  // The PhaseProfiler is a process-wide singleton; concurrent kernels
  // would interleave their samples into one meaningless stream.
  obs::PhaseProfiler::SetEnabled(false);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count));
  const auto start = Clock::now();
  for (int r = 0; r < count; ++r) {
    threads.emplace_back([&summary, r, nodes, tasks] {
      SimulationConfig config = ScaleConfig(nodes, tasks, 1, true);
      config.seed = 42 + static_cast<std::uint64_t>(r);
      const ScaleRun run = RunScale(config);
      ReplicationRow& row = summary.rows[static_cast<std::size_t>(r)];
      row.seed = config.seed;
      row.seconds = run.seconds;
      row.completed = run.report.completed_tasks;
    });
  }
  for (std::thread& t : threads) t.join();
  summary.wall_seconds = SecondsSince(start);
  summary.total_tasks =
      static_cast<std::uint64_t>(tasks) * static_cast<std::uint64_t>(count);
  summary.aggregate_tasks_per_second =
      summary.wall_seconds > 0.0
          ? static_cast<double>(summary.total_tasks) / summary.wall_seconds
          : 0.0;
  obs::PhaseProfiler::SetEnabled(true);
  return summary;
}

std::vector<PhaseRow> CapturePhases(const std::string& run) {
  std::vector<PhaseRow> rows;
  const obs::PhaseProfiler& prof = obs::PhaseProfiler::Instance();
  for (std::size_t i = 0; i < obs::kProfPhaseCount; ++i) {
    const auto phase = static_cast<obs::ProfPhase>(i);
    const auto stats = prof.stats(phase);
    if (stats.calls == 0) continue;
    rows.push_back(
        {run, std::string(obs::ToString(phase)), stats.calls, stats.total_ns});
  }
  return rows;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable regardless of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

[[nodiscard]] bool WriteJson(const std::string& path, bool quick, bool big,
                             int sweep_nodes, int sweep_tasks,
                             std::size_t kernel_threads, bool degraded,
                             const std::vector<SweepRow>& sweep,
                             const std::vector<TrajectoryRow>& trajectory,
                             const std::vector<PhaseRow>& phases,
                             const ReplicationSummary& reps,
                             bool identical, double gate_speedup) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"scale\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"big\": {},\n", big ? "true" : "false");
  out << Format("  \"hardware_threads\": {},\n",
                std::thread::hardware_concurrency());
  out << Format("  \"kernel_threads\": {},\n", kernel_threads);
  out << Format("  \"degraded\": {},\n", degraded ? "true" : "false");
  out << Format("  \"sweep_nodes\": {},\n", sweep_nodes);
  out << Format("  \"sweep_tasks\": {},\n", sweep_tasks);
  out << "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    out << Format(
        "    {{\"shards\": {}, \"seconds\": {}, \"speedup\": {}, "
        "\"metrics_identical\": {}}}{}\n",
        r.shards, Fixed(r.seconds, 4), Fixed(r.speedup, 3),
        r.metrics_identical ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"trajectory\": [\n";
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const TrajectoryRow& r = trajectory[i];
    out << Format(
        "    {{\"nodes\": {}, \"tasks\": {}, \"shards\": {}, \"indexed\": "
        "true, \"seconds\": {}, \"completed_tasks\": {}, "
        "\"tasks_per_second\": {}}}{}\n",
        r.nodes, r.tasks, r.shards, Fixed(r.seconds, 4), r.completed,
        Fixed(r.tasks_per_second, 1), i + 1 < trajectory.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseRow& r = phases[i];
    out << Format(
        "    {{\"run\": \"{}\", \"phase\": \"{}\", \"calls\": {}, "
        "\"total_ns\": {}}}{}\n",
        r.run, r.phase, r.calls, r.total_ns,
        i + 1 < phases.size() ? "," : "");
  }
  out << "  ],\n";
  if (reps.count > 0) {
    out << "  \"replications\": {\n";
    out << Format("    \"count\": {},\n", reps.count);
    out << Format("    \"wall_seconds\": {},\n", Fixed(reps.wall_seconds, 4));
    out << Format("    \"total_tasks\": {},\n", reps.total_tasks);
    out << Format("    \"aggregate_tasks_per_second\": {},\n",
                  Fixed(reps.aggregate_tasks_per_second, 1));
    out << "    \"runs\": [\n";
    for (std::size_t i = 0; i < reps.rows.size(); ++i) {
      const ReplicationRow& r = reps.rows[i];
      out << Format(
          "      {{\"seed\": {}, \"seconds\": {}, \"completed_tasks\": "
          "{}}}{}\n",
          r.seed, Fixed(r.seconds, 4), r.completed,
          i + 1 < reps.rows.size() ? "," : "");
    }
    out << "    ]\n";
    out << "  },\n";
  }
  out << Format(
      "  \"gate\": {{\"metrics_identical\": {}, \"best_k4_speedup\": {}}}\n",
      identical ? "true" : "false", Fixed(gate_speedup, 3));
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Sharded-kernel scale-out benchmark; writes BENCH_scale.json");
  cli.AddBool("quick", false, "CI smoke grid (20k-node sweep, short trajectory)");
  cli.AddBool("big", false,
              "run the 1M-node / 10M-task trajectory point (minutes-scale)");
  cli.AddInt("replications", 0,
             "also run R concurrent independent seeds (42..42+R-1) and "
             "report aggregate tasks/second");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  const bool big = cli.GetBool("big");
  const int replications = static_cast<int>(cli.GetInt("replications"));
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool degraded = hardware_threads <= 1;
  if (degraded) {
    // Loud on purpose: a 1-thread host runs the ShardPool broadcast as a
    // caller-only loop, so the sweep measures batching, not parallelism,
    // and the speedup numbers below MUST NOT be compared against
    // multi-core baselines.
    std::cerr << "=====================================================\n"
              << "WARNING: hardware_concurrency <= 1 — shard speedups on\n"
              << "this host do not reflect parallel scaling. BENCH_scale\n"
              << ".json is marked \"degraded\": true and the speedup gate\n"
              << "is skipped.\n"
              << "=====================================================\n";
  }
  // The saturating scenario discards tasks by design; keep the per-discard
  // warnings out of the bench output.
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_scale.json";
  }

  // --- Layer 1: sequential-scan vs sharded-scan shard sweep --------------
  const int sweep_nodes = quick ? 20000 : 100000;
  const int sweep_tasks = quick ? 30000 : 150000;
  obs::PhaseProfiler::SetEnabled(true);

  std::cout << Format("shard sweep: {} nodes, {} tasks (scan kernel)\n",
                      sweep_nodes, sweep_tasks);
  const int reps = 2;  // best-of-2: one noisy run cannot flip the gate
  obs::PhaseProfiler::Instance().Reset();
  const ScaleRun seq =
      RunBest(ScaleConfig(sweep_nodes, sweep_tasks, 1, false), reps);
  std::vector<PhaseRow> phases = CapturePhases("scan-sequential");
  std::vector<SweepRow> sweep;
  sweep.push_back({1, seq.seconds, 1.0, true});
  std::cout << Format("  shards=1  {}s\n", Fixed(seq.seconds, 3));

  bool identical = true;
  double gate_speedup = 0.0;
  std::size_t kernel_threads = 1;
  std::vector<PhaseRow> best_phases;
  for (const std::size_t shards : {2u, 4u, 8u}) {
    obs::PhaseProfiler::Instance().Reset();
    const ScaleRun run =
        RunBest(ScaleConfig(sweep_nodes, sweep_tasks, shards, false), reps);
    kernel_threads = std::max(kernel_threads, run.pool_threads);
    SweepRow row;
    row.shards = shards;
    row.seconds = run.seconds;
    row.speedup = run.seconds > 0.0 ? seq.seconds / run.seconds : 0.0;
    row.metrics_identical = MetricsIdentical(seq.report, run.report);
    identical = identical && row.metrics_identical;
    if (shards >= 4 && row.speedup > gate_speedup) {
      gate_speedup = row.speedup;
      best_phases = CapturePhases(Format("scan-sharded-k{}", shards));
    }
    std::cout << Format("  shards={}  {}s  speedup {}x  metrics identical: {}\n",
                        shards, Fixed(run.seconds, 3), Fixed(row.speedup, 2),
                        row.metrics_identical ? "yes" : "NO");
    sweep.push_back(row);
  }
  phases.insert(phases.end(), best_phases.begin(), best_phases.end());

  // --- Layer 2: sharded-indexed trajectory toward 1M nodes / 10M tasks ---
  struct Point {
    int nodes;
    int tasks;
  };
  std::vector<Point> points;
  if (quick) {
    points = {{10000, 15000}};
  } else {
    points = {{10000, 30000}, {100000, 150000}};
  }
  if (big) points.push_back({1000000, 10000000});

  std::cout << "\ntrajectory (sharded-indexed kernel, K=8)\n";
  std::vector<TrajectoryRow> trajectory;
  for (const Point& p : points) {
    SimulationConfig config = ScaleConfig(p.nodes, p.tasks, 8, true);
    if (p.tasks >= 1000000) {
      // The million-node point needs completions to free capacity, or the
      // bounded queue discards the bulk of the workload.
      config.tasks.min_required_time = 2000;
      config.tasks.max_required_time = 20000;
    }
    // Each trajectory point gets its own phase rows: the indexed-sharded
    // breakdown is the one that actually scales toward 1M nodes, and
    // comparing it against the scan rows above is the point of the file.
    obs::PhaseProfiler::Instance().Reset();
    const ScaleRun run = RunScale(config);
    const std::vector<PhaseRow> point_phases =
        CapturePhases(Format("indexed-sharded-k8-{}n", p.nodes));
    phases.insert(phases.end(), point_phases.begin(), point_phases.end());
    TrajectoryRow row;
    row.nodes = p.nodes;
    row.tasks = p.tasks;
    row.shards = 8;
    row.seconds = run.seconds;
    row.completed = run.report.completed_tasks;
    row.tasks_per_second =
        run.seconds > 0.0 ? static_cast<double>(p.tasks) / run.seconds : 0.0;
    std::cout << Format("  {} nodes, {} tasks: {}s ({} tasks/s)\n", p.nodes,
                        p.tasks, Fixed(run.seconds, 3),
                        Fixed(row.tasks_per_second, 0));
    trajectory.push_back(row);
  }

  // --- Optional layer 3: concurrent independent replications -------------
  ReplicationSummary rep_summary;
  if (replications > 0) {
    const int rep_nodes = quick ? 5000 : 20000;
    const int rep_tasks = quick ? 8000 : 30000;
    std::cout << Format("\nreplications: {} concurrent seeds, {} nodes, "
                        "{} tasks each\n",
                        replications, rep_nodes, rep_tasks);
    rep_summary = RunReplications(replications, rep_nodes, rep_tasks);
    std::cout << Format("  {}s wall, {} tasks total ({} tasks/s aggregate)\n",
                        Fixed(rep_summary.wall_seconds, 3),
                        rep_summary.total_tasks,
                        Fixed(rep_summary.aggregate_tasks_per_second, 0));
  }

  if (!WriteJson(out_path, quick, big, sweep_nodes, sweep_tasks,
                 kernel_threads, degraded, sweep, trajectory, phases,
                 rep_summary, identical, gate_speedup)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  // On a 1-thread host the fork-join runs caller-only; the speedup gate
  // would measure noise, so only the determinism contract gates there.
  const bool gate_ok = identical && (degraded || gate_speedup >= 1.0);
  if (!gate_ok) {
    std::cerr << Format(
        "gate FAILED: metrics_identical={} best_k4_speedup={}\n",
        identical ? "true" : "false", Fixed(gate_speedup, 3));
  }
  return gate_ok ? 0 : 1;
}
