// Million-node scale-out benchmark for the sharded parallel simulation
// kernel (DESIGN.md §13), emitted as machine-readable JSON so the perf
// trajectory can be tracked across commits.
//
// Two layers:
//   1. Shard sweep: end-to-end Simulator wall-clock on a saturating
//      large-cluster workload, sequential scan kernel (shards=1) vs the
//      sharded scan kernel at K in {2, 4, 8}, plus a cross-check that the
//      paper-facing metrics (scheduling steps, scheduler workload,
//      placements) are bit-identical at every K — the determinism contract.
//   2. Trajectory: sharded-indexed runs at increasing scale toward the
//      million-node / ten-million-task point (--big runs the full point;
//      the default stops at 100k nodes so the bench stays minutes-scale).
//
// The scheduler-phase breakdown of the sequential and best sharded runs is
// captured with the PhaseProfiler (host wall time; never the
// WorkloadMeter).
//
// Output: BENCH_scale.json next to the executable (override with --out).
// --quick shrinks the grid for CI smoke runs. Exit status 1 unless every
// sharded run's metrics are bit-identical to sequential AND the best
// K >= 4 speedup is >= 1.0 (the CI gate; multi-core runners should see the
// fork-join win on top of the single-pass batching).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "obs/profiler.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::SimulationConfig;
using dreamsim::core::Simulator;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// A cluster saturated well past its concurrent capacity: arrivals every
/// tick, execution times longer than the arrival span, and a bounded
/// suspension queue. Decisions routinely fall through every scheduler
/// phase, which is exactly the regime where the O(N) phase walks dominate.
SimulationConfig ScaleConfig(int nodes, int tasks, std::size_t shards,
                             bool indexed) {
  SimulationConfig config;
  config.nodes.count = nodes;
  config.tasks.total_tasks = tasks;
  config.tasks.min_interval = 1;
  config.tasks.max_interval = 2;
  config.tasks.min_required_time = 50000;
  config.tasks.max_required_time = 100000;
  config.suspension_capacity = 256;
  config.max_suspension_retries = 6;
  config.scheduler_index = indexed;
  config.shards = shards;
  config.enable_monitoring = false;
  config.seed = 42;
  return config;
}

struct ScaleRun {
  double seconds = 0.0;
  MetricsReport report;
};

ScaleRun RunScale(const SimulationConfig& config) {
  Simulator sim(config);  // setup (node generation) outside the timer
  ScaleRun run;
  const auto start = Clock::now();
  run.report = sim.Run();
  run.seconds = SecondsSince(start);
  return run;
}

/// The determinism contract, checked on the paper-facing aggregates.
bool MetricsIdentical(const MetricsReport& a, const MetricsReport& b) {
  bool same = a.scheduling_steps_total == b.scheduling_steps_total &&
              a.housekeeping_steps_total == b.housekeeping_steps_total &&
              a.total_scheduler_workload == b.total_scheduler_workload &&
              a.completed_tasks == b.completed_tasks &&
              a.discarded_tasks == b.discarded_tasks &&
              a.suspended_ever == b.suspended_ever &&
              a.total_reconfigurations == b.total_reconfigurations &&
              a.total_simulation_time == b.total_simulation_time;
  for (int k = 0; k < 5; ++k) {
    same = same && a.placements_by_kind[k] == b.placements_by_kind[k];
  }
  return same;
}

/// Best-of-`reps` wall time, so one noisy run cannot flip the speedup
/// gate. Also asserts repeated runs report identical metrics (determinism
/// across invocations, not just across shard counts).
ScaleRun RunBest(const SimulationConfig& config, int reps) {
  ScaleRun best = RunScale(config);
  for (int r = 1; r < reps; ++r) {
    const ScaleRun again = RunScale(config);
    if (!MetricsIdentical(best.report, again.report)) {
      std::cerr << "error: repeated run diverged (nondeterministic kernel)\n";
      std::exit(1);
    }
    if (again.seconds < best.seconds) best.seconds = again.seconds;
  }
  return best;
}

struct SweepRow {
  std::size_t shards = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  bool metrics_identical = true;
};

struct TrajectoryRow {
  int nodes = 0;
  int tasks = 0;
  std::size_t shards = 1;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  double tasks_per_second = 0.0;
};

struct PhaseRow {
  std::string run;
  std::string phase;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

std::vector<PhaseRow> CapturePhases(const std::string& run) {
  std::vector<PhaseRow> rows;
  const obs::PhaseProfiler& prof = obs::PhaseProfiler::Instance();
  for (std::size_t i = 0; i < obs::kProfPhaseCount; ++i) {
    const auto phase = static_cast<obs::ProfPhase>(i);
    const auto stats = prof.stats(phase);
    if (stats.calls == 0) continue;
    rows.push_back(
        {run, std::string(obs::ToString(phase)), stats.calls, stats.total_ns});
  }
  return rows;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable regardless of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

[[nodiscard]] bool WriteJson(const std::string& path, bool quick, bool big,
                             int sweep_nodes, int sweep_tasks,
                             const std::vector<SweepRow>& sweep,
                             const std::vector<TrajectoryRow>& trajectory,
                             const std::vector<PhaseRow>& phases,
                             bool identical, double gate_speedup) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"scale\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << Format("  \"big\": {},\n", big ? "true" : "false");
  out << Format("  \"hardware_threads\": {},\n",
                std::thread::hardware_concurrency());
  out << Format("  \"sweep_nodes\": {},\n", sweep_nodes);
  out << Format("  \"sweep_tasks\": {},\n", sweep_tasks);
  out << "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    out << Format(
        "    {{\"shards\": {}, \"seconds\": {}, \"speedup\": {}, "
        "\"metrics_identical\": {}}}{}\n",
        r.shards, Fixed(r.seconds, 4), Fixed(r.speedup, 3),
        r.metrics_identical ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"trajectory\": [\n";
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const TrajectoryRow& r = trajectory[i];
    out << Format(
        "    {{\"nodes\": {}, \"tasks\": {}, \"shards\": {}, \"indexed\": "
        "true, \"seconds\": {}, \"completed_tasks\": {}, "
        "\"tasks_per_second\": {}}}{}\n",
        r.nodes, r.tasks, r.shards, Fixed(r.seconds, 4), r.completed,
        Fixed(r.tasks_per_second, 1), i + 1 < trajectory.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseRow& r = phases[i];
    out << Format(
        "    {{\"run\": \"{}\", \"phase\": \"{}\", \"calls\": {}, "
        "\"total_ns\": {}}}{}\n",
        r.run, r.phase, r.calls, r.total_ns,
        i + 1 < phases.size() ? "," : "");
  }
  out << "  ],\n";
  out << Format(
      "  \"gate\": {{\"metrics_identical\": {}, \"best_k4_speedup\": {}}}\n",
      identical ? "true" : "false", Fixed(gate_speedup, 3));
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Sharded-kernel scale-out benchmark; writes BENCH_scale.json");
  cli.AddBool("quick", false, "CI smoke grid (20k-node sweep, short trajectory)");
  cli.AddBool("big", false,
              "run the 1M-node / 10M-task trajectory point (minutes-scale)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  const bool big = cli.GetBool("big");
  // The saturating scenario discards tasks by design; keep the per-discard
  // warnings out of the bench output.
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_scale.json";
  }

  // --- Layer 1: sequential-scan vs sharded-scan shard sweep --------------
  const int sweep_nodes = quick ? 20000 : 100000;
  const int sweep_tasks = quick ? 30000 : 150000;
  obs::PhaseProfiler::SetEnabled(true);

  std::cout << Format("shard sweep: {} nodes, {} tasks (scan kernel)\n",
                      sweep_nodes, sweep_tasks);
  const int reps = 2;  // best-of-2: one noisy run cannot flip the gate
  obs::PhaseProfiler::Instance().Reset();
  const ScaleRun seq =
      RunBest(ScaleConfig(sweep_nodes, sweep_tasks, 1, false), reps);
  std::vector<PhaseRow> phases = CapturePhases("scan-sequential");
  std::vector<SweepRow> sweep;
  sweep.push_back({1, seq.seconds, 1.0, true});
  std::cout << Format("  shards=1  {}s\n", Fixed(seq.seconds, 3));

  bool identical = true;
  double gate_speedup = 0.0;
  std::vector<PhaseRow> best_phases;
  for (const std::size_t shards : {2u, 4u, 8u}) {
    obs::PhaseProfiler::Instance().Reset();
    const ScaleRun run =
        RunBest(ScaleConfig(sweep_nodes, sweep_tasks, shards, false), reps);
    SweepRow row;
    row.shards = shards;
    row.seconds = run.seconds;
    row.speedup = run.seconds > 0.0 ? seq.seconds / run.seconds : 0.0;
    row.metrics_identical = MetricsIdentical(seq.report, run.report);
    identical = identical && row.metrics_identical;
    if (shards >= 4 && row.speedup > gate_speedup) {
      gate_speedup = row.speedup;
      best_phases = CapturePhases(Format("scan-sharded-k{}", shards));
    }
    std::cout << Format("  shards={}  {}s  speedup {}x  metrics identical: {}\n",
                        shards, Fixed(run.seconds, 3), Fixed(row.speedup, 2),
                        row.metrics_identical ? "yes" : "NO");
    sweep.push_back(row);
  }
  phases.insert(phases.end(), best_phases.begin(), best_phases.end());

  // --- Layer 2: sharded-indexed trajectory toward 1M nodes / 10M tasks ---
  struct Point {
    int nodes;
    int tasks;
  };
  std::vector<Point> points;
  if (quick) {
    points = {{10000, 15000}};
  } else {
    points = {{10000, 30000}, {100000, 150000}};
  }
  if (big) points.push_back({1000000, 10000000});

  std::cout << "\ntrajectory (sharded-indexed kernel, K=8)\n";
  std::vector<TrajectoryRow> trajectory;
  for (const Point& p : points) {
    SimulationConfig config = ScaleConfig(p.nodes, p.tasks, 8, true);
    if (p.tasks >= 1000000) {
      // The million-node point needs completions to free capacity, or the
      // bounded queue discards the bulk of the workload.
      config.tasks.min_required_time = 2000;
      config.tasks.max_required_time = 20000;
    }
    const ScaleRun run = RunScale(config);
    TrajectoryRow row;
    row.nodes = p.nodes;
    row.tasks = p.tasks;
    row.shards = 8;
    row.seconds = run.seconds;
    row.completed = run.report.completed_tasks;
    row.tasks_per_second =
        run.seconds > 0.0 ? static_cast<double>(p.tasks) / run.seconds : 0.0;
    std::cout << Format("  {} nodes, {} tasks: {}s ({} tasks/s)\n", p.nodes,
                        p.tasks, Fixed(run.seconds, 3),
                        Fixed(row.tasks_per_second, 0));
    trajectory.push_back(row);
  }

  if (!WriteJson(out_path, quick, big, sweep_nodes, sweep_tasks, sweep,
                 trajectory, phases, identical, gate_speedup)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  const bool gate_ok = identical && gate_speedup >= 1.0;
  if (!gate_ok) {
    std::cerr << Format(
        "gate FAILED: metrics_identical={} best_k4_speedup={}\n",
        identical ? "true" : "false", Fixed(gate_speedup, 3));
  }
  return gate_ok ? 0 : 1;
}
