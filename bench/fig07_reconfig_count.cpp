// Figure 7 reproduction: average reconfiguration count per node vs. total
// tasks generated, for 100 nodes (Fig. 7a) and 200 nodes (Fig. 7b).
//
// Paper shape: partial reconfigures *more* per node ("more options for the
// scheduler to assign a task to a node"), and 100-node runs reconfigure
// more than 200-node runs.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using dreamsim::bench::FigureSeries;
  using dreamsim::bench::FigureSpec;
  using dreamsim::core::MetricsReport;

  const FigureSpec spec{
      "Fig. 7",
      "average reconfiguration count per node (full vs partial)",
      {100, 200},
      {FigureSeries{"reconfig_count", [](const MetricsReport& r) {
                      return r.avg_reconfig_count_per_node;
                    }}}};
  return dreamsim::bench::RunFigure(argc, argv, spec);
}
