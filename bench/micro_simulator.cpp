// Micro-benchmarks for end-to-end simulator throughput: tasks simulated per
// second in both reconfiguration modes and under each scheduling policy.
#include <benchmark/benchmark.h>

#include "core/simulator.hpp"

namespace {

using namespace dreamsim;

core::SimulationConfig BenchConfig(std::int64_t tasks, std::int64_t nodes) {
  core::SimulationConfig config;
  config.nodes.count = static_cast<int>(nodes);
  config.tasks.total_tasks = static_cast<int>(tasks);
  config.seed = 42;
  config.enable_monitoring = false;
  return config;
}

void BM_SimulatorPartial(benchmark::State& state) {
  for (auto _ : state) {
    core::SimulationConfig config = BenchConfig(state.range(0), 200);
    config.mode = sched::ReconfigMode::kPartial;
    core::Simulator sim(std::move(config));
    benchmark::DoNotOptimize(sim.Run().completed_tasks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorPartial)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_SimulatorFull(benchmark::State& state) {
  for (auto _ : state) {
    core::SimulationConfig config = BenchConfig(state.range(0), 200);
    config.mode = sched::ReconfigMode::kFull;
    core::Simulator sim(std::move(config));
    benchmark::DoNotOptimize(sim.Run().completed_tasks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorFull)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_SimulatorByPolicy(benchmark::State& state) {
  const auto policy = static_cast<core::PolicyChoice>(state.range(0));
  for (auto _ : state) {
    core::SimulationConfig config = BenchConfig(2000, 200);
    config.policy = policy;
    core::Simulator sim(std::move(config));
    benchmark::DoNotOptimize(sim.Run().completed_tasks);
  }
  state.SetLabel(std::string(core::ToString(policy)));
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimulatorByPolicy)
    ->DenseRange(0, 6)
    ->Unit(benchmark::kMillisecond);

// Measurement note (PR 7): ResourceStore::InitNodes pre-reserves every
// per-configuration EntryList from the node-count hint (count*2/configs +
// slack), the same discipline as the event-heap/FIFO reservations. Setup
// below covers node generation plus those reservations; before the change
// the first saturation wave paid the list growth instead, which showed up
// as rehash spikes inside the *timed* region of BM_SimulatorPartial.
void BM_SimulatorSetup(benchmark::State& state) {
  for (auto _ : state) {
    core::Simulator sim(BenchConfig(100, state.range(0)));
    benchmark::DoNotOptimize(sim.store().node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorSetup)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_MonitoringOverhead(benchmark::State& state) {
  const bool monitoring = state.range(0) != 0;
  for (auto _ : state) {
    core::SimulationConfig config = BenchConfig(2000, 200);
    config.enable_monitoring = monitoring;
    core::Simulator sim(std::move(config));
    benchmark::DoNotOptimize(sim.Run().completed_tasks);
  }
  state.SetLabel(monitoring ? "monitoring-on" : "monitoring-off");
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MonitoringOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
