// Ablation: contiguous-placement fabric model (extension; DESIGN.md §6).
//
// The paper's Eq. 4 treats node area as a scalar. Real partial
// reconfiguration places bitstreams in contiguous regions, so external
// fragmentation can reject a configuration the scalar model would accept.
// This bench quantifies the gap: scalar vs contiguous (under each placement
// heuristic), on the identical workload.
#include <iostream>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

namespace {

void Report(const char* label, const dreamsim::core::MetricsReport& r,
            double mean_frag) {
  std::cout << dreamsim::Format(
      "{:<22}{:>12}{:>12}{:>16}{:>16}{:>12}\n", label, r.completed_tasks,
      r.discarded_tasks, dreamsim::Format("{}", r.avg_waiting_time_per_task),
      dreamsim::Format("{}", r.avg_reconfig_count_per_node),
      dreamsim::Format("{}", mean_frag));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Fragmentation ablation: scalar Eq. 4 area model vs contiguous "
      "placement (first/best/worst-fit).");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("tasks", 4000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::cout << "=== Fragmentation ablation (partial reconfiguration) ===\n";
  std::cout << Format("{:<22}{:>12}{:>12}{:>16}{:>16}{:>12}\n", "fabric model",
                      "completed", "discarded", "avg_wait", "reconf/node",
                      "end_frag");

  const auto run = [&](bool contiguous, resource::Placement placement,
                       const char* label) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.nodes.contiguous_placement = contiguous;
    config.nodes.placement = placement;
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.enable_monitoring = false;
    core::Simulator simulator(std::move(config));
    const core::MetricsReport report = simulator.Run();
    Report(label, report, simulator.store().Fragmentation().mean);
  };

  run(false, resource::Placement::kFirstFit, "scalar (paper)");
  run(true, resource::Placement::kFirstFit, "contiguous/first-fit");
  run(true, resource::Placement::kBestFit, "contiguous/best-fit");
  run(true, resource::Placement::kWorstFit, "contiguous/worst-fit");

  std::cout << "\nend_frag = mean external-fragmentation index over nodes at "
               "end of run.\n";
  return 0;
}
