// Ablation: the paper leaves Eq. 7's sampling instants unstated (DESIGN.md
// §4). This bench runs the identical workload under every WasteAccounting
// policy, in both reconfiguration modes, so the reader can see which
// accountings preserve the Fig. 6 ordering and why the default is the
// literal Eq. 6-at-arrival sampling.
#include <iostream>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli("Waste-accounting ablation for Eq. 6/7 (see DESIGN.md §4).");
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("tasks", 5000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::cout << "=== Waste-accounting ablation (avg wasted area per task) ===\n";
  std::cout << Format("{:<18}{:>16}{:>16}{:>12}\n", "accounting", "full",
                      "partial", "ordering");
  for (const auto accounting :
       {core::WasteAccounting::kOnSchedule,
        core::WasteAccounting::kTimeWeighted,
        core::WasteAccounting::kIdleConfigured,
        core::WasteAccounting::kOnConfigure}) {
    double waste[2];
    int i = 0;
    for (const auto mode :
         {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
      core::SimulationConfig config;
      config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
      config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
      config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
      config.mode = mode;
      config.waste_accounting = accounting;
      config.enable_monitoring = false;
      core::Simulator simulator(std::move(config));
      waste[i++] = simulator.Run().avg_wasted_area_per_task;
    }
    std::cout << Format("{:<18}{:>16}{:>16}{:>12}\n",
                        core::ToString(accounting), Format("{}", waste[0]),
                        Format("{}", waste[1]),
                        waste[1] < waste[0]   ? "partial<full"
                        : waste[1] > waste[0] ? "INVERTED"
                                              : "equal");
  }
  std::cout << "\nThe paper's Fig. 6 ordering (partial < full) holds for the\n"
               "sampling policies; on-configure inverts it because the full\n"
               "scenario configures rarely (Fig. 7) under the queue-reuse "
               "drain.\n";
  return 0;
}
