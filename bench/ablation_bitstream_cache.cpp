// Ablation: bitstream shipping and per-node caching (extension; DESIGN.md
// §6). With shipping enabled, every fresh configuration pays a network
// transfer of its BSize (Eq. 2); an LRU cache at each node skips repeats.
// Sweeps the cache capacity and reports hit rate and the waiting-time
// impact, in partial-reconfiguration mode.
#include <iostream>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli("Bitstream-cache ablation (shipping + LRU capacity sweep).");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("tasks", 4000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  cli.AddInt("bandwidth", 2000, "network bytes per tick");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::cout << "=== Bitstream-cache ablation (partial reconfiguration) ===\n";
  std::cout << Format("{:<16}{:>10}{:>10}{:>10}{:>18}{:>16}\n",
                      "cache (bytes)", "hits", "misses", "hit-rate",
                      "transfer ticks", "avg_wait");

  const auto run = [&](bool ship, Bytes capacity, const char* label) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.ship_bitstreams = ship;
    config.bitstream_cache_capacity = capacity;
    config.network.bytes_per_tick = cli.GetInt("bandwidth");
    config.enable_monitoring = false;
    core::Simulator simulator(std::move(config));
    const core::MetricsReport r = simulator.Run();
    const std::uint64_t lookups = r.bitstream_hits + r.bitstream_misses;
    std::cout << Format(
        "{:<16}{:>10}{:>10}{:>10}{:>18}{:>16}\n", label, r.bitstream_hits,
        r.bitstream_misses,
        lookups ? Format("{}", static_cast<double>(r.bitstream_hits) /
                                   static_cast<double>(lookups))
                : std::string("-"),
        static_cast<std::int64_t>(r.bitstream_transfer_time),
        Format("{}", r.avg_waiting_time_per_task));
  };

  run(false, 0, "no shipping");
  run(true, 0, "0 (no cache)");
  run(true, 200'000, "200k");
  run(true, 400'000, "400k");
  run(true, 800'000, "800k");
  run(true, 100'000'000, "unbounded");
  return 0;
}
