// Indexed-vs-scan comparison for the suspension-queue drain queries
// (DESIGN.md "Scheduler index"), emitted as machine-readable JSON so the
// perf trajectory can be tracked across commits.
//
// Two layers:
//   1. ns/query for each drain candidate-selection pattern at queue depths
//      1k/10k/100k: a literal counted walk of the queue (what the
//      reference Simulator::DrainSuspensionQueue does) vs the
//      SusQueueIndex answer plus its analytic bulk step charge, on
//      identical populations.
//   2. End-to-end RunSweep wall-clock at saturation (deep queues) with
//      drain_index off vs on — scheduler_index stays on in both runs, so
//      the drain path is the only difference — plus a cross-check that the
//      paper-facing metrics are bit-identical in both modes.
//
// Output: BENCH_sus_drain.json next to the executable (override with
// --out). --quick shrinks the grid for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/sweep.hpp"
#include "resource/suspension_queue.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dreamsim;
using dreamsim::core::MetricsReport;
using dreamsim::core::RunSweep;
using dreamsim::core::SweepParams;
using resource::StepKind;
using resource::SusEntryAttrs;
using resource::SuspensionQueue;
using resource::WorkloadMeter;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-point rendering (util::Format pads but has no precision specs).
std::string Fixed(double value, int precision) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// A saturated-regime queue population: 64 distinct resolved configs, a
/// single device family (the paper's evaluation), areas mostly too large
/// for a freshly freed region with a sparse sprinkle of small tasks.
/// Deterministic, so the scan and indexed queues see identical state.
void FillQueue(SuspensionQueue& queue, std::vector<SusEntryAttrs>& attrs,
               int depth, WorkloadMeter& meter) {
  Rng rng(11);
  for (int i = 0; i < depth; ++i) {
    SusEntryAttrs a;
    a.resolved_config =
        ConfigId{static_cast<std::uint32_t>(rng.uniform_int(0, 63))};
    a.needed_area = (i % 997 == 996) ? 100 : rng.uniform_int(1000, 2000);
    a.priority = static_cast<double>(rng.uniform_int(0, 9));
    if (!queue.Add(TaskId{static_cast<std::uint32_t>(i)}, a, meter)) {
      throw std::logic_error("bench queue unexpectedly bounded");
    }
    attrs.push_back(a);
  }
}

/// The CouldUseNode predicate in attribute form (single family).
bool Eligible(const SusEntryAttrs& a, Area bound, ConfigId match) {
  if (match.valid() && a.resolved_config == match) return true;
  return a.needed_area <= bound;
}

// --- Literal reference walks (what the scan-mode drain executes) ---------

std::optional<std::size_t> ScanExactMatch(
    const std::vector<TaskId>& queue, const std::vector<SusEntryAttrs>& attrs,
    ConfigId config, bool by_priority, WorkloadMeter& meter) {
  std::optional<std::size_t> best;
  double best_priority = 0.0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    meter.Add(StepKind::kSchedulingSearch);
    const SusEntryAttrs& a = attrs[queue[i].value()];
    if (a.resolved_config != config) continue;
    if (!best || (by_priority && a.priority > best_priority)) {
      best = i;
      best_priority = a.priority;
    }
  }
  return best;
}

std::optional<std::size_t> ScanOldestEligible(
    const std::vector<TaskId>& queue, const std::vector<SusEntryAttrs>& attrs,
    Area bound, ConfigId match, WorkloadMeter& meter) {
  for (std::size_t i = 0; i < queue.size(); ++i) {
    meter.Add(StepKind::kSchedulingSearch);
    if (Eligible(attrs[queue[i].value()], bound, match)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> ScanBestPriorityEligible(
    const std::vector<TaskId>& queue, const std::vector<SusEntryAttrs>& attrs,
    Area bound, ConfigId match, WorkloadMeter& meter) {
  std::optional<std::size_t> best;
  double best_priority = 0.0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    meter.Add(StepKind::kSchedulingSearch);
    const SusEntryAttrs& a = attrs[queue[i].value()];
    if (!Eligible(a, bound, match)) continue;
    if (!best || a.priority > best_priority) {
      best = i;
      best_priority = a.priority;
    }
  }
  return best;
}

/// Times `fn` until at least `min_seconds` of samples accumulate; returns
/// mean ns per call.
double NsPerCall(const std::function<void()>& fn, double min_seconds) {
  fn();  // warm-up
  std::uint64_t iterations = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) fn();
    const double elapsed = SecondsSince(start);
    if (elapsed >= min_seconds || iterations >= (1ULL << 26)) {
      return elapsed * 1e9 / static_cast<double>(iterations);
    }
    const double target = min_seconds * 1.2;
    const double guess = elapsed > 0.0
                             ? static_cast<double>(iterations) * target / elapsed
                             : static_cast<double>(iterations) * 16.0;
    iterations = std::max(iterations * 2, static_cast<std::uint64_t>(guess));
  }
}

struct QueryRow {
  std::string query;
  int depth = 0;
  double scan_ns = 0.0;
  double indexed_ns = 0.0;
  [[nodiscard]] double Speedup() const {
    return indexed_ns > 0.0 ? scan_ns / indexed_ns : 0.0;
  }
};

/// One end-to-end comparison point: saturated regimes where queues stay
/// deep for most of the run and the per-completion drain dominates.
struct Scenario {
  std::string name;
  sched::ReconfigMode mode;
  int nodes;
  std::vector<int> task_counts;
  Tick max_interval;  // 0 = Table II default [1, 50]
};

struct SweepResult {
  Scenario scenario;
  double scan_seconds = 0.0;
  double indexed_seconds = 0.0;
  bool metrics_identical = false;
  [[nodiscard]] double Speedup() const {
    return indexed_seconds > 0.0 ? scan_seconds / indexed_seconds : 0.0;
  }
};

SweepResult RunEndToEnd(const Scenario& scenario, std::uint64_t seed) {
  SweepResult result;
  result.scenario = scenario;

  SweepParams params;
  params.base.nodes.count = scenario.nodes;
  params.base.seed = seed;
  params.base.enable_monitoring = false;
  if (scenario.max_interval > 0) {
    params.base.tasks.max_interval = scenario.max_interval;
  }
  params.task_counts = scenario.task_counts;
  params.modes = {scenario.mode};
  params.threads = 1;  // honest wall-clock
  params.base.scheduler_index = true;  // isolate the drain difference

  params.base.drain_index = false;
  auto start = Clock::now();
  const std::vector<MetricsReport> scan_reports = RunSweep(params);
  result.scan_seconds = SecondsSince(start);

  params.base.drain_index = true;
  start = Clock::now();
  const std::vector<MetricsReport> indexed_reports = RunSweep(params);
  result.indexed_seconds = SecondsSince(start);

  result.metrics_identical = scan_reports.size() == indexed_reports.size();
  for (std::size_t i = 0;
       result.metrics_identical && i < scan_reports.size(); ++i) {
    const MetricsReport& a = scan_reports[i];
    const MetricsReport& b = indexed_reports[i];
    result.metrics_identical =
        a.total_scheduler_workload == b.total_scheduler_workload &&
        a.avg_scheduling_steps_per_task == b.avg_scheduling_steps_per_task &&
        a.scheduling_steps_total == b.scheduling_steps_total &&
        a.housekeeping_steps_total == b.housekeeping_steps_total &&
        a.completed_tasks == b.completed_tasks &&
        a.discarded_tasks == b.discarded_tasks &&
        a.suspended_ever == b.suspended_ever &&
        a.total_reconfigurations == b.total_reconfigurations;
  }
  return result;
}

/// Directory of argv[0] (with trailing separator), so the JSON lands next
/// to the executable — build/bench/ under the standard layout — regardless
/// of the caller's working directory.
std::string ExecutableDir(const char* argv0) {
  const std::string path(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

[[nodiscard]] bool WriteJson(const std::string& path, bool quick,
                             const std::vector<QueryRow>& rows,
                             const std::vector<SweepResult>& sweeps) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"sus_drain\",\n";
  out << Format("  \"quick\": {},\n", quick ? "true" : "false");
  out << "  \"queries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const QueryRow& r = rows[i];
    out << Format(
        "    {{\"query\": \"{}\", \"depth\": {}, \"scan_ns\": {}, "
        "\"indexed_ns\": {}, \"speedup\": {}}}{}\n",
        r.query, r.depth, r.scan_ns, r.indexed_ns, r.Speedup(),
        i + 1 < rows.size() ? "," : "");
  }
  out << "  ],\n";
  out << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& s = sweeps[i];
    std::string tasks;
    for (std::size_t t = 0; t < s.scenario.task_counts.size(); ++t) {
      tasks += Format("{}{}", t > 0 ? ", " : "", s.scenario.task_counts[t]);
    }
    out << Format(
        "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"nodes\": {}, "
        "\"task_counts\": [{}], \"scan_seconds\": {}, \"indexed_seconds\": "
        "{}, \"speedup\": {}, \"metrics_identical\": {}}}{}\n",
        s.scenario.name,
        s.scenario.mode == sched::ReconfigMode::kFull ? "full" : "partial",
        s.scenario.nodes, tasks, s.scan_seconds, s.indexed_seconds,
        s.Speedup(), s.metrics_identical ? "true" : "false",
        i + 1 < sweeps.size() ? "," : "");
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Indexed-vs-scan suspension-drain comparison; writes "
      "BENCH_sus_drain.json");
  cli.AddBool("quick", false, "CI smoke grid (1k/10k depths, short sweep)");
  cli.AddString("out", "", "output JSON path (default: next to the binary)");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  Log::SetLevel(LogLevel::kError);
  std::string out_path = cli.GetString("out");
  if (out_path.empty()) {
    out_path = ExecutableDir(argv[0]) + "BENCH_sus_drain.json";
  }

  const std::vector<int> depths = quick ? std::vector<int>{1000, 10000}
                                        : std::vector<int>{1000, 10000, 100000};
  const double min_seconds = quick ? 0.01 : 0.05;
  // The node-side prefilter bound: 150 admits only the sparse small tasks
  // (first hit ~1k deep), 50 admits nothing (the common saturated case —
  // the freed region fits none of the queue).
  const ConfigId target{63};

  std::vector<QueryRow> rows;
  std::cout << Format("{:>26}{:>9}{:>14}{:>14}{:>10}\n", "query", "depth",
                      "scan ns", "indexed ns", "speedup");
  for (const int depth : depths) {
    WorkloadMeter fill_meter;
    SuspensionQueue scan_queue;
    SuspensionQueue indexed_queue;
    indexed_queue.SetDrainIndexed(true);
    std::vector<SusEntryAttrs> attrs;
    FillQueue(scan_queue, attrs, depth, fill_meter);
    std::vector<SusEntryAttrs> attrs_again;
    FillQueue(indexed_queue, attrs_again, depth, fill_meter);
    WorkloadMeter scan_meter;
    WorkloadMeter indexed_meter;
    const auto charge_full = [&] {
      // Indexed full-mode drains charge the whole-queue walk in bulk.
      indexed_meter.Add(StepKind::kSchedulingSearch, indexed_queue.size());
    };

    struct NamedPair {
      std::string name;
      std::function<void()> scan;
      std::function<void()> indexed;
    };
    const std::vector<NamedPair> pairs = {
        {"full_exact_match",
         [&] {
           (void)ScanExactMatch(scan_queue.tasks(), attrs, target, false,
                                scan_meter);
         },
         [&] {
           charge_full();
           (void)indexed_queue.OldestExactMatch(target);
         }},
        {"full_exact_match_priority",
         [&] {
           (void)ScanExactMatch(scan_queue.tasks(), attrs, target, true,
                                scan_meter);
         },
         [&] {
           charge_full();
           (void)indexed_queue.BestPriorityExactMatch(target);
         }},
        {"partial_fifo_first_hit",
         [&] {
           (void)ScanOldestEligible(scan_queue.tasks(), attrs, 150,
                                    ConfigId::invalid(), scan_meter);
         },
         [&] {
           const auto hit = indexed_queue.OldestEligible(
               FamilyId::invalid(), 150, 0, ConfigId::invalid());
           // The reference walk stops at the hit (or walks the tail dry).
           indexed_meter.Add(StepKind::kSchedulingSearch,
                             hit ? *hit + 1 : indexed_queue.size());
         }},
        {"partial_fifo_none",
         [&] {
           (void)ScanOldestEligible(scan_queue.tasks(), attrs, 50,
                                    ConfigId::invalid(), scan_meter);
         },
         [&] {
           const auto hit = indexed_queue.OldestEligible(
               FamilyId::invalid(), 50, 0, ConfigId::invalid());
           indexed_meter.Add(StepKind::kSchedulingSearch,
                             hit ? *hit + 1 : indexed_queue.size());
         }},
        {"partial_priority_best",
         [&] {
           (void)ScanBestPriorityEligible(scan_queue.tasks(), attrs, 150,
                                          ConfigId::invalid(), scan_meter);
         },
         [&] {
           charge_full();
           (void)indexed_queue.BestPriorityEligible(FamilyId::invalid(), 150,
                                                    ConfigId::invalid());
         }},
        {"contains_miss",
         [&] {
           (void)scan_queue.Contains(TaskId{9999999}, scan_meter);
         },
         [&] {
           (void)indexed_queue.Contains(TaskId{9999999}, indexed_meter);
         }},
    };
    for (const NamedPair& pair : pairs) {
      QueryRow row;
      row.query = pair.name;
      row.depth = depth;
      row.scan_ns = NsPerCall(pair.scan, min_seconds);
      row.indexed_ns = NsPerCall(pair.indexed, min_seconds);
      std::cout << Format("{:>26}{:>9}{:>14}{:>14}{:>10}\n", row.query,
                          row.depth, Fixed(row.scan_ns, 1),
                          Fixed(row.indexed_ns, 1),
                          Fixed(row.Speedup(), 1) + "x");
      rows.push_back(std::move(row));
    }
  }

  // End-to-end: saturated arrivals keep the queue thousands deep for most
  // of the run, which is exactly where the reference per-completion walk
  // went quadratic. PR 1's bench recorded that at these regimes the drain
  // dominated the host work; with the drain indexed the whole sweep
  // accelerates while every modeled metric stays bit-identical.
  std::vector<Scenario> scenarios;
  if (quick) {
    scenarios.push_back(
        {"saturated-partial", sched::ReconfigMode::kPartial, 200, {5000}, 4});
    scenarios.push_back(
        {"saturated-full", sched::ReconfigMode::kFull, 200, {5000}, 4});
  } else {
    scenarios.push_back(
        {"saturated-partial", sched::ReconfigMode::kPartial, 200, {20000}, 4});
    scenarios.push_back(
        {"saturated-full", sched::ReconfigMode::kFull, 200, {20000}, 4});
    scenarios.push_back(
        {"large-scale", sched::ReconfigMode::kPartial, 2000, {20000}, 2});
  }
  std::cout << "\nend-to-end RunSweep\n";
  std::vector<SweepResult> sweeps;
  bool identical = true;
  for (const Scenario& scenario : scenarios) {
    SweepResult sweep = RunEndToEnd(scenario, 42);
    std::cout << Format(
        "  {:<18}{:<8}{:>6} nodes  scan: {}s  indexed: {}s  speedup: {}x  "
        "metrics identical: {}\n",
        scenario.name,
        scenario.mode == sched::ReconfigMode::kFull ? "full" : "partial",
        scenario.nodes, Fixed(sweep.scan_seconds, 3),
        Fixed(sweep.indexed_seconds, 3), Fixed(sweep.Speedup(), 2),
        sweep.metrics_identical ? "yes" : "NO");
    identical = identical && sweep.metrics_identical;
    sweeps.push_back(std::move(sweep));
  }

  if (!WriteJson(out_path, quick, rows, sweeps)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return identical ? 0 : 1;
}
