// Ablation: suspension-queue knobs. DESIGN.md calls out the drain design
// (node-targeted, FIFO-first, bounded policy runs per completion) as a
// reproduction decision; this bench quantifies the sensitivity of the key
// metrics to the batch bound, retry budget, and queue capacity.
#include <iostream>

#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"

namespace {

dreamsim::core::MetricsReport RunWith(
    const dreamsim::CliParser& cli,
    void (*tweak)(dreamsim::core::SimulationConfig&, std::int64_t),
    std::int64_t value) {
  dreamsim::core::SimulationConfig config;
  config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
  config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
  config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  config.mode = dreamsim::sched::ReconfigMode::kPartial;
  config.enable_monitoring = false;
  tweak(config, value);
  dreamsim::core::Simulator simulator(std::move(config));
  return simulator.Run();
}

void PrintRow(const char* name, std::int64_t value,
              const dreamsim::core::MetricsReport& r) {
  std::cout << dreamsim::Format(
      "{:<22}{:>8}{:>14}{:>12}{:>18}{:>20}\n", name, value, r.completed_tasks,
      r.discarded_tasks, dreamsim::Format("{}", r.avg_waiting_time_per_task),
      r.total_scheduler_workload);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli("Suspension-queue ablation (partial reconfiguration).");
  cli.AddInt("nodes", 100, "number of reconfigurable nodes");
  cli.AddInt("tasks", 4000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::cout << "=== Suspension-queue ablation ===\n";
  std::cout << Format("{:<22}{:>8}{:>14}{:>12}{:>18}{:>20}\n", "knob", "value",
                      "completed", "discarded", "avg_wait", "workload");

  for (const std::int64_t batch : {1, 4, 8, 32, 0}) {
    PrintRow("suspension_batch", batch,
             RunWith(cli,
                     [](core::SimulationConfig& c, std::int64_t v) {
                       c.suspension_batch = static_cast<std::size_t>(v);
                     },
                     batch));
  }
  for (const std::int64_t retries : {0, 1, 4, 64}) {
    PrintRow("max_retries", retries,
             RunWith(cli,
                     [](core::SimulationConfig& c, std::int64_t v) {
                       c.max_suspension_retries =
                           static_cast<std::uint32_t>(v);
                     },
                     retries));
  }
  for (const std::int64_t capacity : {0, 16, 256, 4096}) {
    PrintRow("queue_capacity", capacity,
             RunWith(cli,
                     [](core::SimulationConfig& c, std::int64_t v) {
                       c.suspension_capacity = static_cast<std::size_t>(v);
                     },
                     capacity));
  }
  std::cout << "\n(batch/capacity 0 = unbounded; retries 0 = never give up)\n";
  return 0;
}
