// Figure 6 reproduction: average wasted area per task vs. total tasks
// generated, for 100 nodes (Fig. 6a) and 200 nodes (Fig. 6b), with and
// without partial reconfiguration.
//
// Paper shape: the partial series lies below the full series at both node
// counts, and the 200-node magnitudes exceed the 100-node ones.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using dreamsim::bench::FigureSeries;
  using dreamsim::bench::FigureSpec;
  using dreamsim::core::MetricsReport;

  const FigureSpec spec{
      "Fig. 6",
      "average wasted area per task (full vs partial reconfiguration)",
      {100, 200},
      {FigureSeries{"wasted_area", [](const MetricsReport& r) {
                      return r.avg_wasted_area_per_task;
                    }}}};
  return dreamsim::bench::RunFigure(argc, argv, spec);
}
