// Ablation: the paper claims DReAMSim "can be used to test different
// scheduling policies for a given set of parameters". This bench runs the
// case-study algorithm against every baseline policy on one identical
// workload and prints all Table I metrics side by side.
#include <iostream>

#include "core/report.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Policy ablation: DReAMSim case-study algorithm vs baseline policies "
      "(all with partial reconfiguration semantics).");
  cli.AddInt("nodes", 200, "number of reconfigurable nodes");
  cli.AddInt("tasks", 5000, "number of generated tasks");
  cli.AddInt("seed", 42, "random seed shared by all policies");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  std::vector<core::MetricsReport> reports;
  for (const auto choice :
       {core::PolicyChoice::kDreamSim, core::PolicyChoice::kFirstFit,
        core::PolicyChoice::kBestFit, core::PolicyChoice::kWorstFit,
        core::PolicyChoice::kRandomFit, core::PolicyChoice::kRoundRobin,
        core::PolicyChoice::kLeastLoaded}) {
    core::SimulationConfig config;
    config.nodes.count = static_cast<int>(cli.GetInt("nodes"));
    config.tasks.total_tasks = static_cast<int>(cli.GetInt("tasks"));
    config.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
    config.mode = sched::ReconfigMode::kPartial;
    config.policy = choice;
    config.label = std::string(core::ToString(choice));
    config.enable_monitoring = false;
    core::Simulator simulator(std::move(config));
    reports.push_back(simulator.Run());
  }

  std::cout << "=== Policy ablation (partial reconfiguration, "
            << cli.GetInt("tasks") << " tasks, " << cli.GetInt("nodes")
            << " nodes) ===\n"
            << core::RenderComparisonTable(reports);
  return 0;
}
