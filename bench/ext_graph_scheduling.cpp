// Extension bench: task-graph scheduling ("we will implement scheduling
// policies to schedule task graphs"). Sweeps system size for a fixed
// layered pipeline and reports makespan under four regimes: full/partial
// reconfiguration x FIFO/critical-path-first release.
#include <iostream>

#include "core/graph_session.hpp"
#include "util/cli.hpp"
#include "util/fmt.hpp"
#include "workload/task_graph.hpp"

int main(int argc, char** argv) {
  using namespace dreamsim;

  CliParser cli(
      "Task-graph scheduling bench: makespan vs node count, full/partial "
      "reconfiguration x fifo/critical-path-first.");
  cli.AddInt("layers", 10, "pipeline depth");
  cli.AddInt("width", 12, "tasks per layer");
  cli.AddDouble("density", 0.3, "edge probability between adjacent layers");
  cli.AddInt("seed", 42, "random seed");
  if (!cli.Parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.HelpText();
    return 0;
  }

  core::SimulationConfig base;
  base.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  base.enable_monitoring = false;

  Rng catalogue_rng(DeriveSeed(base.seed, 2));
  const auto catalogue = resource::ConfigCatalogue::Generate(
      base.configs, ptype::Catalogue::Default(), catalogue_rng);
  workload::GraphGenParams params;
  params.layers = static_cast<int>(cli.GetInt("layers"));
  params.width = static_cast<int>(cli.GetInt("width"));
  params.edge_density = cli.GetDouble("density");
  params.task_params.min_required_time = 500;
  params.task_params.max_required_time = 5000;
  Rng graph_rng(DeriveSeed(base.seed, 17));
  const workload::TaskGraph graph =
      workload::GenerateLayeredGraph(params, catalogue, graph_rng);

  std::cout << Format(
      "=== Task-graph scheduling ({} vertices, critical path {}) ===\n",
      graph.size(), graph.CriticalPathLength());
  std::cout << Format("{:>8}{:>16}{:>16}{:>16}{:>16}\n", "nodes", "full/fifo",
                      "full/cp", "partial/fifo", "partial/cp");

  for (const int nodes : {4, 8, 16, 32, 64}) {
    std::string line = Format("{:>8}", nodes);
    for (const auto mode :
         {sched::ReconfigMode::kFull, sched::ReconfigMode::kPartial}) {
      for (const auto order :
           {core::GraphOrder::kFifo, core::GraphOrder::kCriticalPathFirst}) {
        core::SimulationConfig config = base;
        config.nodes.count = nodes;
        config.mode = mode;
        const core::GraphRunResult result =
            core::RunGraph(config, graph, order);
        line += Format("{:>16}", result.makespan);
      }
    }
    std::cout << line << "\n";
  }
  std::cout << "\n(makespan in ticks; cp = critical-path-first list "
               "scheduling)\n";
  return 0;
}
