// Figure 10 reproduction (200 nodes): average configuration time per task
// (Eq. 10) vs. total tasks generated.
//
// Paper shape: partial reconfiguration pays *more* configuration time per
// task — it reconfigures regions far more often (Fig. 7) — while the full
// scenario mostly reuses whole-node configurations from the queue.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  using dreamsim::bench::FigureSeries;
  using dreamsim::bench::FigureSpec;
  using dreamsim::core::MetricsReport;

  const FigureSpec spec{
      "Fig. 10",
      "average configuration time per task (full vs partial)",
      {200},
      {FigureSeries{"config_time", [](const MetricsReport& r) {
                      return r.avg_config_time_per_task;
                    }}}};
  return dreamsim::bench::RunFigure(argc, argv, spec);
}
